//! The one retry-backoff schedule shared by every retrying path.
//!
//! [`NodeClient::call`](crate::client::NodeClient::call) and
//! [`Session::flush`](crate::session::Session::flush) both retry transient
//! failures; both drive this type instead of carrying their own sleep
//! arithmetic. The schedule is capped exponential with jitter: each
//! [`Backoff::sleep`] sleeps a uniformly-jittered interval in
//! `[delay/2, delay]` (so peers that failed together do not retry in
//! lockstep) and then doubles the delay up to the cap. [`Backoff::reset`]
//! drops the delay back to the base — used both at the start of a fresh
//! request and when a request dies on a *fresh* connection, which means the
//! peer is back and the widened schedule is stale.

use crate::fault::XorShift64;
use std::time::Duration;

/// Capped, jittered exponential backoff with reset.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    max: Duration,
    next: Duration,
    /// Jitter source; persisted across resets so repeated schedules stay
    /// desynchronized between peers seeded differently.
    rng: XorShift64,
}

impl Backoff {
    /// A schedule starting at `base`, doubling per sleep, capped at `max`.
    /// `seed` fixes the jitter stream (derive it from a peer identity so
    /// distinct clients desynchronize).
    #[must_use]
    pub fn new(base: Duration, max: Duration, seed: u64) -> Self {
        Self { base, max, next: base, rng: XorShift64::new(seed) }
    }

    /// The delay the next [`sleep`](Self::sleep) will jitter over.
    #[must_use]
    pub fn current_delay(&self) -> Duration {
        self.next
    }

    /// Draws the next jittered interval in `[delay/2, delay]` and doubles
    /// the delay (capped at the maximum) — the non-blocking face of the
    /// schedule, used by timer-wheel drivers that park a request instead
    /// of parking a thread.
    pub fn next_delay(&mut self) -> Duration {
        let nanos = self.next.as_nanos() as u64;
        let jittered = nanos / 2 + self.rng.next_u64() % (nanos / 2 + 1);
        self.next = (self.next * 2).min(self.max);
        Duration::from_nanos(jittered)
    }

    /// Sleeps a jittered interval in `[delay/2, delay]`, then doubles the
    /// delay (capped at the maximum).
    pub fn sleep(&mut self) {
        std::thread::sleep(self.next_delay());
    }

    /// Drops the schedule back to the base delay. The jitter stream is
    /// *not* reseeded.
    pub fn reset(&mut self) {
        self.next = self.base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_to_the_cap_and_resets() {
        let mut b = Backoff::new(Duration::from_micros(10), Duration::from_micros(35), 7);
        assert_eq!(b.current_delay(), Duration::from_micros(10));
        b.sleep();
        assert_eq!(b.current_delay(), Duration::from_micros(20));
        b.sleep();
        assert_eq!(b.current_delay(), Duration::from_micros(35), "doubling caps at max");
        b.reset();
        assert_eq!(b.current_delay(), Duration::from_micros(10));
    }

    #[test]
    fn distinct_seeds_give_distinct_jitter() {
        // The jitter stream is a pure function of the seed; two differently
        // seeded schedules should diverge almost surely.
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
