//! The reactor's timer wheel: deadlines, retry backoffs and hedge timers
//! as one ordered set over an abstract millisecond clock.
//!
//! Everything time-driven in the networking stack — request deadlines,
//! retry backoff wake-ups, hedge triggers, idle-connection reaping —
//! funnels through one [`TimerWheel`] per driver thread, and the wheel
//! never reads the wall clock itself: callers feed it `now_ms` from a
//! [`Clock`]. Production uses [`MonotonicClock`]; tests drive a manual
//! clock, so firing order is a *deterministic function of the schedule*,
//! not of scheduler jitter (the same discipline [`BreakerCore`] uses).
//!
//! The API is a classic hashed-wheel surface (schedule / cancel / advance)
//! but the store is a sorted deadline map: at the few hundred timers a
//! driver thread carries, slot hashing buys nothing over `BTreeMap`'s
//! O(log n), and the map keeps expiry order exact — ties fire in
//! scheduling order, which the deterministic tests pin down.
//!
//! [`BreakerCore`]: crate::resilience::BreakerCore

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// A millisecond clock the reactor and its timers read instead of
/// `Instant::now`, so tests can single-step time.
pub trait Clock {
    /// Milliseconds since the clock's origin (monotone, never wraps).
    fn now_ms(&self) -> u64;
}

/// The production clock: monotone milliseconds since construction.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    #[must_use]
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// A manual clock for deterministic tests: time moves only when told to.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: std::cell::Cell<u64>,
}

impl ManualClock {
    /// A clock stopped at 0 ms.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ms`.
    pub fn advance(&self, ms: u64) {
        self.now.set(self.now.get().saturating_add(ms));
    }

    /// Sets the clock to an absolute time (must not move backwards).
    pub fn set(&self, now_ms: u64) {
        debug_assert!(now_ms >= self.now.get(), "manual clock must be monotone");
        self.now.set(now_ms);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now.get()
    }
}

/// Handle to one scheduled timer, used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// An ordered set of `(deadline_ms, payload)` timers.
///
/// `advance(now)` pops every timer with `deadline <= now` in deadline
/// order, ties broken by scheduling order. Cancellation is O(log n) and
/// exact: a cancelled timer never fires and never reappears.
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// `(deadline_ms, seq) → (id, payload)`, ordered by expiry then by
    /// scheduling sequence.
    order: BTreeMap<(u64, u64), (TimerId, T)>,
    /// Reverse index for cancellation.
    by_id: HashMap<TimerId, (u64, u64)>,
    next_seq: u64,
}

impl<T> TimerWheel<T> {
    /// An empty wheel.
    #[must_use]
    pub fn new() -> Self {
        Self { order: BTreeMap::new(), by_id: HashMap::new(), next_seq: 0 }
    }

    /// Schedules `payload` to fire once `now >= deadline_ms`.
    pub fn schedule(&mut self, deadline_ms: u64, payload: T) -> TimerId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = TimerId(seq);
        self.order.insert((deadline_ms, seq), (id, payload));
        self.by_id.insert(id, (deadline_ms, seq));
        id
    }

    /// Cancels a pending timer. Returns its payload when it had not fired.
    pub fn cancel(&mut self, id: TimerId) -> Option<T> {
        let key = self.by_id.remove(&id)?;
        self.order.remove(&key).map(|(_, payload)| payload)
    }

    /// The earliest pending deadline, if any timer is scheduled.
    #[must_use]
    pub fn next_deadline_ms(&self) -> Option<u64> {
        self.order.keys().next().map(|&(deadline, _)| deadline)
    }

    /// Milliseconds until the earliest deadline at time `now_ms`
    /// (`Some(0)` when overdue, `None` when the wheel is empty).
    #[must_use]
    pub fn until_next(&self, now_ms: u64) -> Option<u64> {
        self.next_deadline_ms().map(|d| d.saturating_sub(now_ms))
    }

    /// Pops every timer due at `now_ms`, in deadline-then-schedule order.
    pub fn advance(&mut self, now_ms: u64) -> Vec<(TimerId, T)> {
        let mut fired = Vec::new();
        while let Some((&key, _)) = self.order.iter().next() {
            if key.0 > now_ms {
                break;
            }
            if let Some((id, payload)) = self.order.remove(&key) {
                self.by_id.remove(&id);
                fired.push((id, payload));
            }
        }
        fired
    }

    /// Number of pending timers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no timers are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite requirement: deadline firing order under a deterministic
    /// clock — earlier deadlines first, ties in scheduling order, nothing
    /// fires early.
    #[test]
    fn deadlines_fire_in_order_under_a_deterministic_clock() {
        let clock = ManualClock::new();
        let mut wheel = TimerWheel::new();
        wheel.schedule(30, "c");
        wheel.schedule(10, "a");
        wheel.schedule(20, "b1");
        wheel.schedule(20, "b2"); // same deadline: scheduling order breaks the tie
        assert_eq!(wheel.next_deadline_ms(), Some(10));
        assert_eq!(wheel.until_next(clock.now_ms()), Some(10));

        // Nothing is due at t=9.
        clock.advance(9);
        assert!(wheel.advance(clock.now_ms()).is_empty());

        clock.advance(1); // t=10
        let fired: Vec<&str> = wheel.advance(clock.now_ms()).into_iter().map(|(_, p)| p).collect();
        assert_eq!(fired, ["a"]);

        // Jumping past several deadlines fires them all, still in order.
        clock.advance(25); // t=35
        let fired: Vec<&str> = wheel.advance(clock.now_ms()).into_iter().map(|(_, p)| p).collect();
        assert_eq!(fired, ["b1", "b2", "c"]);
        assert!(wheel.is_empty());
        assert_eq!(wheel.until_next(clock.now_ms()), None);
    }

    /// Satellite requirement: a hedge timer armed for a slow reply is
    /// cancelled the moment the first valid reply lands — the hedge never
    /// fires afterwards, even once its deadline passes.
    #[test]
    fn hedge_timer_cancelled_on_first_valid_reply_never_fires() {
        let clock = ManualClock::new();
        let mut wheel = TimerWheel::new();
        let deadline = wheel.schedule(100, "request-deadline");
        let hedge = wheel.schedule(25, "hedge-read");

        // The primary reply arrives at t=20, before the hedge delay.
        clock.advance(20);
        assert!(wheel.advance(clock.now_ms()).is_empty(), "nothing due yet");
        assert_eq!(wheel.cancel(hedge), Some("hedge-read"));
        assert_eq!(wheel.cancel(deadline), Some("request-deadline"));

        // Past both deadlines: the cancelled timers stay dead.
        clock.advance(200);
        assert!(wheel.advance(clock.now_ms()).is_empty());
        // Double-cancel is a no-op, not a panic.
        assert_eq!(wheel.cancel(hedge), None);
    }

    /// A hedge that does fire (no reply before the trigger) is delivered
    /// exactly once, and cancelling it afterwards reports "too late".
    #[test]
    fn hedge_timer_fires_once_when_the_reply_is_late() {
        let clock = ManualClock::new();
        let mut wheel = TimerWheel::new();
        let hedge = wheel.schedule(25, "hedge-read");
        clock.advance(30);
        let fired = wheel.advance(clock.now_ms());
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, "hedge-read");
        assert_eq!(wheel.cancel(hedge), None, "already fired");
        assert!(wheel.advance(clock.now_ms() + 1000).is_empty(), "fires exactly once");
    }

    /// Backoff-style reuse: rescheduling after each firing keeps working
    /// and interleaves correctly with other timers.
    #[test]
    fn rescheduled_backoff_timers_interleave_correctly() {
        let clock = ManualClock::new();
        let mut wheel = TimerWheel::new();
        wheel.schedule(10, "retry@10");
        wheel.schedule(35, "deadline@35");
        clock.advance(10);
        assert_eq!(wheel.advance(clock.now_ms())[0].1, "retry@10");
        // Exponential step: next retry at t=30.
        wheel.schedule(30, "retry@30");
        clock.advance(30); // t=40: both due, retry first (earlier deadline)
        let fired: Vec<&str> = wheel.advance(clock.now_ms()).into_iter().map(|(_, p)| p).collect();
        assert_eq!(fired, ["retry@30", "deadline@35"]);
    }

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }
}
