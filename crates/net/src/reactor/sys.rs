//! Raw readiness syscalls behind the reactor: `epoll(7)` on Linux with a
//! portable `poll(2)` fallback, declared directly against libc (the C
//! library is always linked; no new crate dependency).
//!
//! This is the **only** module in `parafile-net` allowed to use `unsafe`:
//! every call site is a direct FFI invocation of a readiness syscall on
//! file descriptors this process owns, with all buffers stack- or
//! `Vec`-backed and lengths passed explicitly. The rest of the crate stays
//! under `#![deny(unsafe_code)]` with no exceptions.

#![allow(unsafe_code)]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

use super::{Event, Interest};

// ---------------------------------------------------------------------------
// FFI declarations (subset of poll.h / sys/epoll.h)

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

#[cfg(target_os = "linux")]
type NfdsT = std::os::raw::c_ulong;
#[cfg(not(target_os = "linux"))]
type NfdsT = u32;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
}

#[cfg(target_os = "linux")]
mod epoll_ffi {
    use std::os::raw::c_int;

    // x86-64 packs the event struct so the u64 data field lands at offset
    // 4; every other architecture uses natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        // Round up so a 100µs timeout does not busy-spin at 0ms.
        Some(t) => i32::try_from(t.as_millis()).unwrap_or(i32::MAX).max(i32::from(!t.is_zero())),
    }
}

// ---------------------------------------------------------------------------
// The portable poll(2) backend

/// Readiness via `poll(2)`: the interest set is a plain vector rebuilt
/// into a `pollfd` array per wait. O(n) per call, available on every unix.
struct PollBackend {
    /// `(fd, token, interest)` registrations, insertion-ordered.
    slots: Vec<(RawFd, usize, Interest)>,
    fds: Vec<PollFd>,
}

impl PollBackend {
    fn new() -> Self {
        Self { slots: Vec::new(), fds: Vec::new() }
    }

    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        if self.slots.iter().any(|&(f, _, _)| f == fd) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
        }
        self.slots.push((fd, token, interest));
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match self.slots.iter_mut().find(|(f, _, _)| *f == fd) {
            Some(slot) => {
                *slot = (fd, token, interest);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let before = self.slots.len();
        self.slots.retain(|&(f, _, _)| f != fd);
        if self.slots.len() == before {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.fds.clear();
        for &(fd, _, interest) in &self.slots {
            let mut ev = 0i16;
            if interest.readable {
                ev |= POLLIN;
            }
            if interest.writable {
                ev |= POLLOUT;
            }
            self.fds.push(PollFd { fd, events: ev, revents: 0 });
        }
        // SAFETY: `fds` is a live, correctly-sized array of pollfd structs;
        // poll(2) writes only the `revents` fields within it.
        let rc =
            unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as NfdsT, timeout_ms(timeout)) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for (slot, pfd) in self.slots.iter().zip(&self.fds) {
            if pfd.revents == 0 {
                continue;
            }
            events.push(Event {
                token: slot.1,
                readable: pfd.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                writable: pfd.revents & (POLLOUT | POLLERR) != 0,
                error: pfd.revents & (POLLERR | POLLHUP) != 0,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The Linux epoll backend

/// Readiness via level-triggered `epoll(7)`: O(ready) per wait.
#[cfg(target_os = "linux")]
struct EpollBackend {
    epfd: RawFd,
    buf: Vec<epoll_ffi::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollBackend {
    fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes a flag word and returns a new fd.
        let epfd = unsafe { epoll_ffi::epoll_create1(epoll_ffi::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { epfd, buf: vec![epoll_ffi::EpollEvent { events: 0, data: 0 }; 256] })
    }

    fn ctl(
        &self,
        op: std::os::raw::c_int,
        fd: RawFd,
        token: usize,
        interest: Interest,
    ) -> io::Result<()> {
        let mut mask = 0u32;
        if interest.readable {
            mask |= epoll_ffi::EPOLLIN;
        }
        if interest.writable {
            mask |= epoll_ffi::EPOLLOUT;
        }
        let mut ev = epoll_ffi::EpollEvent { events: mask, data: token as u64 };
        // SAFETY: `ev` is a valid epoll_event for ADD/MOD; DEL ignores it
        // (passing a live pointer keeps pre-2.6.9 kernel semantics safe).
        let rc = unsafe { epoll_ffi::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        // SAFETY: `buf` is a live array of `buf.len()` epoll_event structs;
        // the kernel fills at most that many entries.
        let rc = unsafe {
            epoll_ffi::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as std::os::raw::c_int,
                timeout_ms(timeout),
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in &self.buf[..rc as usize] {
            let mask = ev.events;
            let token = ev.data;
            events.push(Event {
                token: token as usize,
                readable: mask & (epoll_ffi::EPOLLIN | epoll_ffi::EPOLLHUP | epoll_ffi::EPOLLERR)
                    != 0,
                writable: mask & (epoll_ffi::EPOLLOUT | epoll_ffi::EPOLLERR) != 0,
                error: mask & (epoll_ffi::EPOLLERR | epoll_ffi::EPOLLHUP) != 0,
            });
        }
        if rc as usize == self.buf.len() && self.buf.len() < 4096 {
            // Saturated: grow so a burst does not take multiple waits.
            let grow = self.buf.len() * 2;
            self.buf.resize(grow, epoll_ffi::EpollEvent { events: 0, data: 0 });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollBackend {
    fn drop(&mut self) {
        // SAFETY: closing the epoll fd this struct owns.
        unsafe {
            epoll_ffi::close(self.epfd);
        }
    }
}

// ---------------------------------------------------------------------------
// The selector facade

enum Backend {
    Poll(PollBackend),
    #[cfg(target_os = "linux")]
    Epoll(EpollBackend),
}

/// OS readiness selector: epoll where available, poll(2) otherwise (or
/// when `PF_REACTOR=poll` forces the fallback, which CI uses to keep the
/// portable path exercised on Linux).
pub struct Selector {
    backend: Backend,
}

impl Selector {
    /// Opens a selector on the preferred backend for this platform.
    pub fn new() -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            if std::env::var("PF_REACTOR").as_deref() != Ok("poll") {
                if let Ok(ep) = EpollBackend::new() {
                    return Ok(Self { backend: Backend::Epoll(ep) });
                }
            }
        }
        Ok(Self { backend: Backend::Poll(PollBackend::new()) })
    }

    /// The backend's name, for diagnostics.
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        match self.backend {
            Backend::Poll(_) => "poll",
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
        }
    }

    /// Starts watching `fd` under `token` for `interest`.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Poll(p) => p.register(fd, token, interest),
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll_ffi::EPOLL_CTL_ADD, fd, token, interest),
        }
    }

    /// Changes the interest set (and token) of a watched `fd`.
    pub fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Poll(p) => p.reregister(fd, token, interest),
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll_ffi::EPOLL_CTL_MOD, fd, token, interest),
        }
    }

    /// Stops watching `fd`. Must be called before the fd closes.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            Backend::Poll(p) => p.deregister(fd),
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll_ffi::EPOLL_CTL_DEL, fd, 0, Interest::NONE),
        }
    }

    /// Blocks for readiness up to `timeout` (`None` = forever), appending
    /// ready events. A signal interruption returns cleanly with no events.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        match &mut self.backend {
            Backend::Poll(p) => p.wait(events, timeout),
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.wait(events, timeout),
        }
    }
}
