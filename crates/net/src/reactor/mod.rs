//! A small non-blocking reactor: readiness event loop + timer wheel.
//!
//! The daemon's connection drivers and the session's request multiplexer
//! (DESIGN.md §17) are state machines advanced by exactly two stimuli —
//! *an fd became ready* and *a timer expired* — and this module supplies
//! both. [`Reactor`] wraps the OS selector ([`sys::Selector`]: epoll on
//! Linux, `poll(2)` elsewhere or under `PF_REACTOR=poll`) behind
//! register/reregister/deregister plus a cross-thread [`Reactor::wake`],
//! and [`TimerWheel`] orders deadlines, retry backoffs and hedge timers
//! over an abstract [`Clock`] so the same code paths run under a manual
//! clock in tests.
//!
//! Nothing in here blocks except [`Reactor::poll`] itself; the PA046
//! source lint bans `std::thread::sleep` and blocking `std::net` calls in
//! this module and the state machines driven by it.

pub mod sys;
mod wheel;

pub use wheel::{Clock, ManualClock, MonotonicClock, TimerId, TimerWheel};

use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or closed / errored).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// No events (used for deregistration plumbing).
    pub const NONE: Interest = Interest { readable: false, writable: false };
    /// Readable only — the steady state of an idle connection.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Writable only.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Readable and writable — a connection with queued output.
    pub const READ_WRITE: Interest = Interest { readable: true, writable: true };
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// The fd has bytes (or EOF/error) to read.
    pub readable: bool,
    /// The fd can accept bytes.
    pub writable: bool,
    /// The fd is in an error or hang-up state.
    pub error: bool,
}

/// Token reserved for the reactor's internal waker; user registrations
/// must stay below it.
pub const WAKER_TOKEN: usize = usize::MAX;

/// Cross-thread wake handle: cheap to clone, callable from any thread.
#[derive(Debug, Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Interrupts the reactor's current (or next) [`Reactor::poll`].
    pub fn wake(&self) {
        // A full pipe already guarantees a pending wake-up; every other
        // error means the reactor is gone and waking is moot.
        let _ = (&*self.tx).write(&[1]);
    }
}

/// The event loop core: an OS selector plus a self-pipe waker.
///
/// Single-threaded by design — one driver thread owns the reactor and all
/// state machines behind its tokens; other threads communicate through
/// queues and [`Waker::wake`].
pub struct Reactor {
    selector: sys::Selector,
    waker_tx: Arc<UnixStream>,
    waker_rx: UnixStream,
}

impl Reactor {
    /// Opens a reactor on the platform's preferred selector backend.
    pub fn new() -> io::Result<Self> {
        let mut selector = sys::Selector::new()?;
        let (waker_tx, waker_rx) = UnixStream::pair()?;
        waker_tx.set_nonblocking(true)?;
        waker_rx.set_nonblocking(true)?;
        selector.register(waker_rx.as_raw_fd(), WAKER_TOKEN, Interest::READ)?;
        Ok(Self { selector, waker_tx: Arc::new(waker_tx), waker_rx })
    }

    /// The selector backend in use (`"epoll"` / `"poll"`), for logs.
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        self.selector.backend_name()
    }

    /// A cross-thread handle that interrupts [`poll`](Self::poll).
    #[must_use]
    pub fn waker(&self) -> Waker {
        Waker { tx: Arc::clone(&self.waker_tx) }
    }

    /// Starts watching `fd` under `token`. Tokens must stay below
    /// [`WAKER_TOKEN`] and identify the connection in the caller's slab.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        debug_assert!(token < WAKER_TOKEN, "token collides with the waker");
        self.selector.register(fd, token, interest)
    }

    /// Updates the interest set of a watched fd.
    pub fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.selector.reregister(fd, token, interest)
    }

    /// Stops watching `fd` (call before closing it).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.selector.deregister(fd)
    }

    /// Waits up to `timeout` (`None` = until woken) and appends ready
    /// events to `events` (cleared first). Waker events are drained and
    /// swallowed; the caller only learns "you were woken" by the poll
    /// returning, which is all the queue-draining loops need.
    pub fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.selector.wait(events, timeout)?;
        let mut woken = false;
        events.retain(|ev| {
            if ev.token == WAKER_TOKEN {
                woken = true;
                false
            } else {
                true
            }
        });
        if woken {
            let mut sink = [0u8; 64];
            while matches!((&self.waker_rx).read(&mut sink), Ok(n) if n > 0) {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn readiness_and_waker_round_trip() {
        let mut reactor = Reactor::new().expect("reactor");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).unwrap();
        client.set_nonblocking(true).unwrap();

        reactor.register(server.as_raw_fd(), 7, Interest::READ).expect("register");
        let mut events = Vec::new();
        // Nothing to read yet: a zero timeout returns empty.
        reactor.poll(&mut events, Some(Duration::ZERO)).expect("poll");
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        (&client).write_all(b"x").unwrap();
        reactor.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
        assert!(events.iter().any(|e| e.token == 7 && e.readable), "{events:?}");

        // Write interest on an empty socket buffer reports writable.
        reactor.reregister(server.as_raw_fd(), 7, Interest::READ_WRITE).expect("reregister");
        reactor.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        // The waker interrupts an otherwise-idle poll from another thread.
        reactor.deregister(server.as_raw_fd()).expect("deregister");
        let waker = reactor.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        reactor.poll(&mut events, Some(Duration::from_secs(30))).expect("poll");
        assert!(events.is_empty(), "waker events are swallowed: {events:?}");
        t.join().unwrap();
    }

    #[test]
    fn poll_fallback_backend_works_when_forced() {
        // The forced-fallback env var is read at construction; build a
        // selector directly to avoid racing other tests on the env.
        let mut sel = sys::Selector::new().expect("selector");
        let (a, b) = UnixStream::pair().expect("pair");
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        sel.register(b.as_raw_fd(), 3, Interest::READ).expect("register");
        (&a).write_all(b"ping").unwrap();
        let mut events = Vec::new();
        sel.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
        sel.deregister(b.as_raw_fd()).expect("deregister");
    }
}
