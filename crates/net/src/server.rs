//! The I/O-node daemon.
//!
//! One daemon hosts one subfile per file behind the same
//! [`StorageBackend`] the simulator uses. The daemon is multi-threaded
//! (one thread per connection), enforces a per-frame size budget, a
//! per-connection read timeout, and a bounded global in-flight request
//! count (backpressure: excess requests block in the acceptor thread,
//! which stops reading from the socket — flow control propagates to the
//! client through TCP itself).
//!
//! All scatter/gather arithmetic goes through the stored `PROJ_S`
//! projection, and every interval is clipped to the subfile length before
//! touching the store, so a hostile peer can neither panic the daemon nor
//! make it walk an unbounded segment list.
//!
//! # Fault model (DESIGN.md §11)
//!
//! Directory-backed daemons survive crashes: every scatter write appends
//! its full intent to a per-subfile write-ahead [`Journal`] before touching
//! the store, and `Open` after a restart replays complete intents into the
//! preserved subfile bytes. Mutating requests carry a `(session, seq)`
//! retry stamp; a bounded per-subfile dedup window answers replays with
//! the original result instead of re-applying them, and journal recovery
//! repopulates that window so retries straddling a crash stay exactly-once.
//! A seeded [`FaultPlan`] (config [`DaemonConfig::fault`]) injects
//! connection drops, reply truncation, flush failures, whole-daemon kills,
//! and torn scatter writes deterministically for tests and `pf chaos`.

use crate::error::{ErrCode, ProtocolError};
use crate::fault::{FaultInjector, FaultPlan, FrameFault};
use crate::proto::{version_admitted, ChunkHeader, WriteStream};
use crate::wire::{
    self, op, raw_to_set, FrameReadError, Reply, Request, StatInfo, DEFAULT_MAX_FRAME,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use clusterfile::{ChecksumMap, IntentRecord, Journal, StorageBackend, SubfileStore};
use parafile::redist::Projection;
use parafile_audit::{audit_pattern, AuditConfig, Severity};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, SystemTime};

mod reactor_daemon;

/// Locks a mutex, recovering the guard if a panicking thread poisoned it.
///
/// Daemon state is updated with plain stores and atomics — a panic between
/// two related updates cannot leave half-written structures — so the
/// poison flag carries no information the daemon can act on, and honoring
/// it would let one panicking connection thread wedge every other
/// connection forever.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// [`lock`], for read-locking an `RwLock`.
fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// [`lock`], for write-locking an `RwLock`.
fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// Default upper bound on a streamed chunk's data length (256 KiB).
pub const DEFAULT_MAX_CHUNK: u32 = 256 << 10;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Where subfile bytes live.
    pub backend: StorageBackend,
    /// Largest accepted frame (`len` field), in bytes.
    pub max_frame: u32,
    /// Requests allowed in flight across all connections before the
    /// acceptor blocks (backpressure).
    pub max_inflight: usize,
    /// How long a connection may stall mid-request before it is dropped.
    pub read_timeout: Option<Duration>,
    /// Retry stamps remembered per subfile for write deduplication.
    pub dedup_window: usize,
    /// Deterministic fault plan to inject (tests, `pf serve --chaos`).
    pub fault: Option<FaultPlan>,
    /// Largest chunk data length accepted/advertised for streamed
    /// transfers (protocol ≥ 3); `Pong` carries this as the chunking
    /// capability.
    pub max_chunk: u32,
    /// Highest protocol version this daemon admits. Production daemons
    /// leave this at [`PROTOCOL_VERSION`]; tests lower it to emulate an
    /// older daemon and exercise the client's downgrade negotiation.
    pub max_version: u8,
    /// When set, a background scrub thread walks every hosted subfile at
    /// this cadence and verifies its bytes against the per-page CRC32C
    /// map, counting mismatches into `Stat.checksum_errors` (`pf serve
    /// --scrub SECS`). Detection only — repair is driven by a `pf scrub`
    /// client compiling a redistribution plan from a healthy replica.
    pub scrub_interval: Option<Duration>,
    /// Maximum simultaneously open client connections. Further connects
    /// have their first frame answered with `Overloaded` (protocol ≥ 5;
    /// older frames are simply closed) and the connection dropped, instead
    /// of piling threads onto a daemon already at capacity. `0` =
    /// unbounded, the pre-v5 behavior.
    pub max_connections: usize,
    /// In-flight requests one stamped session may hold across all of its
    /// connections before further ones are shed with `Busy` (protocol ≥ 5),
    /// so one hot client cannot starve the rest. `0` = no cap.
    pub session_inflight: usize,
    /// Un-checkpointed journal backlog (bytes appended across all hosted
    /// subfiles since their last checkpoint, process-local accounting)
    /// beyond which mutating requests degrade to `Busy` (protocol ≥ 5)
    /// instead of growing the write-ahead journal toward ENOSPC. `None` =
    /// no watermark.
    pub journal_watermark: Option<u64>,
    /// Connection-serving model. `0` (the default) keeps the classic
    /// thread-per-connection daemon; `N > 0` runs the reactor daemon
    /// (DESIGN.md §17): one non-blocking event-loop thread multiplexes
    /// every connection and a fixed pool of `N` workers executes decoded
    /// frames, so thousands of concurrent connections cost `N + 1`
    /// threads instead of one each. Defaults from `PF_NET_WORKERS` when
    /// set, so whole test suites can be re-run against the reactor path.
    pub workers: usize,
    /// In-flight requests one tenant (protocol ≥ 6 `Open` tenant id) may
    /// hold across all of its connections before further ones are shed
    /// with `Busy`, so one tenant cannot starve the rest of the daemon's
    /// admission slots. Enforced by the reactor daemon only; `0` = no cap.
    pub tenant_inflight: usize,
    /// Deficit-round-robin fair queueing between tenants in the reactor
    /// worker pool (DESIGN.md §18): each tenant's queued connections get
    /// an equal service quantum per round, whatever its connection count.
    /// `false` falls back to a single FIFO, where an aggressive tenant
    /// with many connections proportionally starves the quiet ones.
    pub fair: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            backend: StorageBackend::Memory,
            max_frame: DEFAULT_MAX_FRAME,
            max_inflight: 64,
            read_timeout: Some(Duration::from_secs(30)),
            dedup_window: 1024,
            fault: None,
            max_chunk: DEFAULT_MAX_CHUNK,
            max_version: PROTOCOL_VERSION,
            scrub_interval: None,
            max_connections: 0,
            session_inflight: 0,
            journal_watermark: None,
            workers: std::env::var("PF_NET_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(0),
            tenant_inflight: 0,
            fair: true,
        }
    }
}

/// `Busy.retry_after_ms` hint when a request is shed by admission control
/// (in-flight saturation, session cap, journal watermark).
const BUSY_RETRY_MS: u32 = 25;

/// `Overloaded.retry_after_ms` hint when a whole connection is shed at the
/// accept edge — reconnecting is costlier than re-sending, so the hint is
/// longer.
const OVERLOADED_RETRY_MS: u32 = 250;

// ---------------------------------------------------------------------------
// Listener / stream abstraction (TCP or Unix-domain)

/// A bound listening socket: TCP (`host:port`) or Unix (`unix:/path`).
pub enum NetListener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener, with the socket path for cleanup.
    Unix(UnixListener, PathBuf),
}

impl NetListener {
    /// Binds `addr`: `unix:/some/path` for a Unix-domain socket, anything
    /// else is a TCP `host:port`.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        if let Some(path) = addr.strip_prefix("unix:") {
            let path = PathBuf::from(path);
            // A previous daemon's leftover socket file would make bind fail.
            if path.exists() {
                std::fs::remove_file(&path)?;
            }
            Ok(NetListener::Unix(UnixListener::bind(&path)?, path))
        } else {
            Ok(NetListener::Tcp(TcpListener::bind(addr)?))
        }
    }

    /// The address clients should connect to (resolves TCP port 0).
    pub fn client_addr(&self) -> std::io::Result<String> {
        match self {
            NetListener::Tcp(l) => Ok(l.local_addr()?.to_string()),
            NetListener::Unix(_, path) => Ok(format!("unix:{}", path.display())),
        }
    }

    fn accept(&self) -> std::io::Result<NetStream> {
        match self {
            NetListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true).ok();
                Ok(NetStream::Tcp(s))
            }
            NetListener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(NetStream::Unix(s))
            }
        }
    }

    /// Non-blocking accept mode for the reactor daemon.
    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            NetListener::Tcp(l) => l.set_nonblocking(nb),
            NetListener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }

    fn as_raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        match self {
            NetListener::Tcp(l) => l.as_raw_fd(),
            NetListener::Unix(l, _) => l.as_raw_fd(),
        }
    }
}

/// A connected stream of either flavor.
pub(crate) enum NetStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl NetStream {
    /// Connects to an address in the same syntax as [`NetListener::bind`].
    pub(crate) fn connect(addr: &str) -> std::io::Result<Self> {
        if let Some(path) = addr.strip_prefix("unix:") {
            Ok(NetStream::Unix(UnixStream::connect(path)?))
        } else {
            let s = TcpStream::connect(addr)?;
            s.set_nodelay(true).ok();
            Ok(NetStream::Tcp(s))
        }
    }

    pub(crate) fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.set_read_timeout(t),
            NetStream::Unix(s) => s.set_read_timeout(t),
        }
    }

    pub(crate) fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.set_nonblocking(nb),
            NetStream::Unix(s) => s.set_nonblocking(nb),
        }
    }

    pub(crate) fn as_raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        match self {
            NetStream::Tcp(s) => s.as_raw_fd(),
            NetStream::Unix(s) => s.as_raw_fd(),
        }
    }

    /// Closes both directions, unblocking any thread parked in a read.
    fn shutdown_both(&self) {
        match self {
            NetStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            NetStream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

// Shared-reference I/O so connection threads can serve through an
// `Arc<NetStream>` while the daemon keeps a weak handle for shutdown.
impl Read for &NetStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match *self {
            NetStream::Tcp(s) => {
                let mut r: &TcpStream = s;
                r.read(buf)
            }
            NetStream::Unix(s) => {
                let mut r: &UnixStream = s;
                r.read(buf)
            }
        }
    }
}

impl Write for &NetStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match *self {
            NetStream::Tcp(s) => {
                let mut w: &TcpStream = s;
                w.write(buf)
            }
            NetStream::Unix(s) => {
                let mut w: &UnixStream = s;
                w.write(buf)
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match *self {
            NetStream::Tcp(s) => {
                let mut w: &TcpStream = s;
                w.flush()
            }
            NetStream::Unix(s) => {
                let mut w: &UnixStream = s;
                w.flush()
            }
        }
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.read(buf),
            NetStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.write(buf),
            NetStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.flush(),
            NetStream::Unix(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared daemon state

#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    fragments: AtomicU64,
    /// Pages that failed CRC32C verification (reads, fetches, scrubs).
    checksum_errors: AtomicU64,
}

/// Bounded FIFO window of `(session, seq) → written` retry stamps.
///
/// A retried `Write` whose stamp is still in the window is acknowledged
/// with the original byte count instead of re-applied. Session 0 is the
/// unstamped (v1) sentinel and is never inserted. Eviction is strictly
/// insertion-ordered, so a sequence number reused after wraparound is
/// deduplicated only while its first occurrence is still resident.
struct DedupWindow {
    capacity: usize,
    order: VecDeque<(u64, u64)>,
    stamps: HashMap<(u64, u64), u64>,
    /// Volatile chunked-upload progress `(session, seq) → acked offset`,
    /// bounded by the same capacity. `ResumeQuery` answers from here so a
    /// retried v3/v4 stream restarts at the last applied chunk instead of
    /// offset 0. Completing a stream clears its entry; the map is never
    /// journaled, so after a restart the answer is 0 and the client starts
    /// over (the journal already covers the applied chunks).
    partial: HashMap<(u64, u64), u64>,
    partial_order: VecDeque<(u64, u64)>,
}

impl DedupWindow {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            order: VecDeque::new(),
            stamps: HashMap::new(),
            partial: HashMap::new(),
            partial_order: VecDeque::new(),
        }
    }

    fn get(&self, session: u64, seq: u64) -> Option<u64> {
        self.stamps.get(&(session, seq)).copied()
    }

    fn insert(&mut self, session: u64, seq: u64, written: u64) {
        if session == 0 || self.capacity == 0 {
            return;
        }
        let key = (session, seq);
        // A completed write supersedes any partial progress it had.
        self.partial.remove(&key);
        if self.stamps.insert(key, written).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.stamps.remove(&old);
                }
            }
        }
    }

    fn progress(&self, session: u64, seq: u64) -> Option<u64> {
        self.partial.get(&(session, seq)).copied()
    }

    fn set_progress(&mut self, session: u64, seq: u64, offset: u64) {
        if session == 0 || self.capacity == 0 {
            return;
        }
        let key = (session, seq);
        if self.partial.insert(key, offset).is_none() {
            self.partial_order.push_back(key);
            while self.partial_order.len() > self.capacity {
                if let Some(old) = self.partial_order.pop_front() {
                    self.partial.remove(&old);
                }
            }
        }
    }
}

struct FileSlot {
    subfile: u32,
    store: Mutex<SubfileStore>,
    /// Write-ahead intent journal (Disabled for memory backends).
    journal: Mutex<Journal>,
    /// Retry stamps of recently applied writes.
    dedup: Mutex<DedupWindow>,
    /// Per-page CRC32C map over the store, persisted to a sidecar on
    /// flush. Lock order: store before sums (sums is always taken while
    /// the store guard is held, never the reverse).
    sums: Mutex<ChecksumMap>,
    /// `PROJ_S(V∩S)` per compute node, as shipped at view-set time.
    views: RwLock<HashMap<u32, Projection>>,
    stats: Stats,
    /// Journal bytes appended since the last checkpoint (process-local
    /// accounting for the [`DaemonConfig::journal_watermark`]).
    journal_pending: AtomicU64,
}

struct Shared {
    config: DaemonConfig,
    /// The daemon's own client-facing address (to self-connect and wake
    /// the acceptor when a remote `Shutdown` arrives).
    addr: String,
    /// Boot stamp returned by `Ping`; changes across restarts, so a client
    /// that remembers the epoch can detect that the daemon crashed and its
    /// session-visible state (views, memory stores) is gone.
    epoch: u64,
    files: RwLock<HashMap<u64, Arc<FileSlot>>>,
    stopping: AtomicBool,
    inflight: Mutex<usize>,
    inflight_cv: Condvar,
    /// Weak handles to open connections, so shutdown can unblock them.
    conns: Mutex<Vec<std::sync::Weak<NetStream>>>,
    /// In-flight request count per stamped session (admission control:
    /// [`DaemonConfig::session_inflight`]).
    session_inflight: Mutex<HashMap<u64, usize>>,
    /// In-flight request count per tenant (admission control:
    /// [`DaemonConfig::tenant_inflight`], reactor mode).
    tenant_inflight: Mutex<HashMap<u32, usize>>,
    /// Deterministic fault injection (None in production).
    fault: Option<FaultInjector>,
    /// Reactor-mode wake handle: `stop()`/`crash()`/remote `Shutdown`
    /// interrupt the event loop through it (None in thread-per-conn mode).
    reactor_waker: Mutex<Option<crate::reactor::Waker>>,
    /// Shutdown signalling for the scrub thread: it waits here between
    /// passes instead of sleeping, so `stop()` interrupts a pause
    /// immediately and can join it before any socket teardown.
    shutdown_mu: Mutex<()>,
    shutdown_cv: Condvar,
    /// Live connection-driver threads (thread-per-connection mode), so
    /// `stop()` waits for in-flight drivers to drain before the listener
    /// socket drops. Stays 0 in reactor mode (the event-loop thread joins
    /// its own workers before it releases the listener).
    conn_threads: Mutex<usize>,
    conn_threads_cv: Condvar,
}

impl Shared {
    fn acquire_slot(&self) {
        let mut n = lock(&self.inflight);
        // Stopping breaks the wait so a saturated daemon can still shut
        // down: the admitted request is answered `ShuttingDown` downstream.
        while *n >= self.config.max_inflight && !self.stopping.load(Ordering::SeqCst) {
            n = self.inflight_cv.wait(n).unwrap_or_else(|e| e.into_inner());
        }
        *n += 1;
    }

    /// Non-blocking [`acquire_slot`](Self::acquire_slot) for protocol ≥ 5
    /// connections: a saturated daemon answers `Busy` instead of parking
    /// the connection thread (shed load, don't queue it).
    fn try_acquire_slot(&self) -> bool {
        let mut n = lock(&self.inflight);
        if *n >= self.config.max_inflight {
            return false;
        }
        *n += 1;
        true
    }

    /// Enters a stamped session's in-flight accounting; `false` = the
    /// session is already at its cap and this request must be shed.
    fn enter_session(&self, session: u64) -> bool {
        let cap = self.config.session_inflight;
        if cap == 0 || session == 0 {
            return true;
        }
        let mut map = lock(&self.session_inflight);
        let n = map.entry(session).or_insert(0);
        if *n >= cap {
            return false;
        }
        *n += 1;
        true
    }

    fn leave_session(&self, session: u64) {
        if self.config.session_inflight == 0 || session == 0 {
            return;
        }
        let mut map = lock(&self.session_inflight);
        if let Some(n) = map.get_mut(&session) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                map.remove(&session);
            }
        }
    }

    /// Enters a tenant's in-flight accounting; `false` = the tenant is at
    /// its [`DaemonConfig::tenant_inflight`] cap and this request must be
    /// shed with `Busy`. Tenant 0 (anonymous / pre-v6 peers) is unmetered.
    fn enter_tenant(&self, tenant: u32) -> bool {
        let cap = self.config.tenant_inflight;
        if cap == 0 || tenant == 0 {
            return true;
        }
        let mut map = lock(&self.tenant_inflight);
        let n = map.entry(tenant).or_insert(0);
        if *n >= cap {
            return false;
        }
        *n += 1;
        true
    }

    fn leave_tenant(&self, tenant: u32) {
        if self.config.tenant_inflight == 0 || tenant == 0 {
            return;
        }
        let mut map = lock(&self.tenant_inflight);
        if let Some(n) = map.get_mut(&tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                map.remove(&tenant);
            }
        }
    }

    /// Total un-checkpointed journal bytes across hosted subfiles.
    fn journal_backlog(&self) -> u64 {
        read(&self.files).values().map(|s| s.journal_pending.load(Ordering::Relaxed)).sum()
    }

    /// Whether the journal-backlog watermark forbids accepting more
    /// mutating work right now.
    fn over_watermark(&self) -> bool {
        self.config.journal_watermark.is_some_and(|wm| self.journal_backlog() >= wm)
    }

    fn release_slot(&self) {
        let mut n = lock(&self.inflight);
        *n = n.saturating_sub(1);
        drop(n);
        self.inflight_cv.notify_one();
    }

    /// Whether an injected kill/torn-write fault has "crashed" the daemon.
    fn fault_crashed(&self) -> bool {
        self.fault.as_ref().is_some_and(FaultInjector::killed)
    }

    /// Simulates a crash: stop accepting, sever every connection abruptly
    /// (no replies, no flushes — exactly what a real crash leaves behind).
    fn crash(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        for conn in lock(&self.conns).drain(..) {
            if let Some(stream) = conn.upgrade() {
                stream.shutdown_both();
            }
        }
        self.inflight_cv.notify_all();
        self.shutdown_cv.notify_all();
        self.wake_reactor();
        // Unblock the acceptor so it observes `stopping` and exits.
        let _ = NetStream::connect(&self.addr);
    }

    /// Interrupts the event loop's current poll (no-op in legacy mode).
    fn wake_reactor(&self) {
        if let Some(w) = lock(&self.reactor_waker).as_ref() {
            w.wake();
        }
    }

    /// Waits (bounded) for thread-per-connection drivers to drain.
    fn wait_conn_threads(&self, timeout: Duration) {
        let deadline = std::time::Instant::now() + timeout;
        let mut n = lock(&self.conn_threads);
        while *n > 0 {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return;
            }
            let (g, _) =
                self.conn_threads_cv.wait_timeout(n, left).unwrap_or_else(|e| e.into_inner());
            n = g;
        }
    }
}

/// RAII decrement of [`Shared::conn_threads`] when a connection driver
/// exits (incremented by the acceptor before the thread spawns, so a
/// `stop()` racing the spawn still waits for it).
struct ConnThreadGuard<'a>(&'a Shared);

impl Drop for ConnThreadGuard<'_> {
    fn drop(&mut self) {
        let mut n = lock(&self.0.conn_threads);
        *n = n.saturating_sub(1);
        drop(n);
        self.0.conn_threads_cv.notify_all();
    }
}

/// A running daemon: its client-facing address and a way to stop it.
pub struct DaemonHandle {
    /// Address clients should connect to.
    addr: String,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    scrub_thread: Option<std::thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The address clients should connect to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The daemon's boot epoch (what `Ping` answers).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.shared.epoch
    }

    /// Whether an injected kill/torn-write fault has "crashed" this daemon
    /// — the restart harness's cue to bring a fresh one up on the same
    /// backend with the crash faults [disarmed](FaultPlan::disarmed_crashes).
    #[must_use]
    pub fn fault_killed(&self) -> bool {
        self.shared.fault_crashed()
    }

    /// Stops the daemon: refuses new connections, closes open ones
    /// (connections finish their in-flight request first — replies are
    /// written before the next frame read observes the closed socket), and
    /// joins the acceptor thread.
    ///
    /// Ordering matters: the scrub thread and in-flight connection drivers
    /// are signalled and joined *before* the accept/reactor thread — which
    /// owns the listener — is joined, so neither a scrub pass nor a late
    /// reply can race the listener socket dropping.
    pub fn stop(&mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Scrub first: it exits promptly (condvar wait, not a sleep) and
        // must never observe half-torn-down sockets or stores.
        self.shared.shutdown_cv.notify_all();
        if let Some(t) = self.scrub_thread.take() {
            let _ = t.join();
        }
        // Sever open connections; their drivers observe the closed socket
        // after finishing the frame in hand. Unpark anything blocked in
        // admission so it can observe `stopping`.
        for conn in lock(&self.shared.conns).drain(..) {
            if let Some(stream) = conn.upgrade() {
                stream.shutdown_both();
            }
        }
        self.shared.inflight_cv.notify_all();
        // Unblock the acceptor (legacy: throwaway connection; reactor:
        // waker interrupts the poll).
        self.shared.wake_reactor();
        let _ = NetStream::connect(&self.addr);
        // Thread-per-connection drivers drain before the listener drops
        // (reactor mode joins its workers inside the event-loop thread).
        self.shared.wait_conn_threads(Duration::from_secs(5));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until the daemon stops (e.g. a remote `Shutdown` request).
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.shared.shutdown_cv.notify_all();
        if let Some(t) = self.scrub_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `addr` and runs the daemon on background threads.
pub fn serve(addr: &str, config: DaemonConfig) -> std::io::Result<DaemonHandle> {
    let listener = NetListener::bind(addr)?;
    let client_addr = listener.client_addr()?;
    let epoch = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(1, |d| d.as_nanos() as u64)
        .max(1);
    let fault = config.fault.clone().map(FaultInjector::new);
    let shared = Arc::new(Shared {
        config,
        addr: client_addr.clone(),
        epoch,
        files: RwLock::new(HashMap::new()),
        stopping: AtomicBool::new(false),
        inflight: Mutex::new(0),
        inflight_cv: Condvar::new(),
        conns: Mutex::new(Vec::new()),
        session_inflight: Mutex::new(HashMap::new()),
        tenant_inflight: Mutex::new(HashMap::new()),
        fault,
        reactor_waker: Mutex::new(None),
        shutdown_mu: Mutex::new(()),
        shutdown_cv: Condvar::new(),
        conn_threads: Mutex::new(0),
        conn_threads_cv: Condvar::new(),
    });
    let workers = shared.config.workers;
    let accept_thread = if workers > 0 {
        // Reactor mode: one event-loop thread multiplexes every
        // connection; `workers` pool threads execute decoded frames.
        let reactor = crate::reactor::Reactor::new()?;
        *lock(&shared.reactor_waker) = Some(reactor.waker());
        listener.set_nonblocking(true)?;
        let accept_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("pf-net-reactor".into())
            .spawn(move || reactor_daemon::run(listener, reactor, &accept_shared, workers))?
    } else {
        let accept_shared = Arc::clone(&shared);
        std::thread::Builder::new().name("pf-net-accept".into()).spawn(move || {
            let cleanup = match &listener {
                NetListener::Unix(_, path) => Some(path.clone()),
                NetListener::Tcp(_) => None,
            };
            loop {
                let stream = match listener.accept() {
                    Ok(s) => s,
                    Err(_) => break,
                };
                if accept_shared.stopping.load(Ordering::SeqCst) {
                    break;
                }
                let stream = Arc::new(stream);
                let overloaded = {
                    let mut conns = lock(&accept_shared.conns);
                    conns.retain(|w| w.strong_count() > 0);
                    let cap = accept_shared.config.max_connections;
                    if cap > 0 && conns.len() >= cap {
                        true
                    } else {
                        conns.push(Arc::downgrade(&stream));
                        false
                    }
                };
                let conn_shared = Arc::clone(&accept_shared);
                *lock(&conn_shared.conn_threads) += 1;
                let spawned = if overloaded {
                    // Accept-edge shedding: a short-lived thread answers the
                    // connection's first frame with `Overloaded` and closes,
                    // so the client backs off instead of hanging.
                    std::thread::Builder::new().name("pf-net-shed".into()).spawn(move || {
                        let _guard = ConnThreadGuard(&conn_shared);
                        shed_connection(&stream, &conn_shared);
                    })
                } else {
                    std::thread::Builder::new().name("pf-net-conn".into()).spawn(move || {
                        let _guard = ConnThreadGuard(&conn_shared);
                        serve_connection(&stream, &conn_shared);
                    })
                };
                if spawned.is_err() {
                    ConnThreadGuard(&accept_shared);
                }
            }
            if let Some(path) = cleanup {
                let _ = std::fs::remove_file(path);
            }
        })?
    };
    let scrub_thread = match shared.config.scrub_interval {
        None => None,
        Some(interval) => {
            let scrub_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("pf-net-scrub".into())
                    .spawn(move || scrub_loop(&scrub_shared, interval))?,
            )
        }
    };
    Ok(DaemonHandle { addr: client_addr, shared, accept_thread: Some(accept_thread), scrub_thread })
}

/// The daemon-side scrub hook: at each interval, verify every hosted
/// subfile against its page checksum map, counting mismatches into
/// `Stat.checksum_errors`. Detection only — a `pf scrub` client reads the
/// counters (or fetches copies directly) and drives repair by compiling a
/// redistribution plan from a healthy replica.
fn scrub_loop(shared: &Shared, interval: Duration) {
    let tick = Duration::from_millis(25).min(interval);
    let mut elapsed = Duration::ZERO;
    while !shared.stopping.load(Ordering::SeqCst) {
        // Interruptible pause: `stop()` notifies `shutdown_cv` so the
        // scrub thread can be joined before any socket teardown instead of
        // finishing a sleep against a daemon mid-shutdown.
        {
            let guard = lock(&shared.shutdown_mu);
            let _ = shared.shutdown_cv.wait_timeout(guard, tick).unwrap_or_else(|e| e.into_inner());
        }
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        elapsed += tick;
        if elapsed < interval {
            continue;
        }
        elapsed = Duration::ZERO;
        let slots: Vec<Arc<FileSlot>> = read(&shared.files).values().cloned().collect();
        for slot in slots {
            if shared.stopping.load(Ordering::SeqCst) {
                return;
            }
            let mut store = lock(&slot.store);
            if let Ok(bad) = lock(&slot.sums).verify_all(&mut store) {
                if bad > 0 {
                    slot.stats.checksum_errors.fetch_add(bad, Ordering::Relaxed);
                }
            }
        }
    }
}

/// A connection accepted over [`DaemonConfig::max_connections`]: read its
/// first frame, answer `Overloaded` (protocol ≥ 5 — older frames are just
/// closed, their client's transport retry will reconnect), and drop it.
fn shed_connection(stream: &NetStream, shared: &Shared) {
    // A short timeout: this thread exists only to deliver the shed verdict.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut stream = stream;
    let mut scratch = Vec::new();
    if let Ok(frame) = wire::read_frame_buf(&mut stream, shared.config.max_frame, &mut scratch) {
        if frame.version >= 5 {
            let reply = Reply::Overloaded { retry_after_ms: OVERLOADED_RETRY_MS };
            let mut out = Vec::new();
            send_reply(&mut stream, frame.version, frame.request_id, &reply, None, &mut out);
        }
    }
    stream.shutdown_both();
}

/// One connection: sequential request/reply frames until close, error, or
/// timeout.
fn serve_connection(stream: &NetStream, shared: &Shared) {
    let _ = stream.set_read_timeout(shared.config.read_timeout);
    let mut stream = stream;
    let mut conn_frames = 0u64;
    // Per-connection scratch buffers: every frame on this connection reads
    // into and encodes out of the same two allocations.
    let mut read_scratch = Vec::new();
    let mut write_scratch = Vec::new();
    // In-progress chunked write, if any (one per connection: chunk frames
    // of a single logical write are sent back to back on one stream).
    let mut chunk_write: Option<ChunkWrite> = None;
    loop {
        let frame =
            match wire::read_frame_buf(&mut stream, shared.config.max_frame, &mut read_scratch) {
                Ok(f) => f,
                Err(FrameReadError::Closed) => return,
                Err(FrameReadError::TooLarge(len)) => {
                    // The frame was not consumed, so the stream is out of
                    // sync: answer with request id 0 and close.
                    let e = ProtocolError::new(
                        ErrCode::FrameTooLarge,
                        format!(
                            "frame of {len} bytes exceeds the {} byte budget",
                            shared.config.max_frame
                        ),
                    );
                    send_reply(
                        &mut stream,
                        PROTOCOL_VERSION,
                        0,
                        &Reply::Error(e),
                        None,
                        &mut write_scratch,
                    );
                    return;
                }
                Err(FrameReadError::TooShort(len)) => {
                    let e = ProtocolError::new(
                        ErrCode::Malformed,
                        format!("frame length {len} is shorter than the header"),
                    );
                    send_reply(
                        &mut stream,
                        PROTOCOL_VERSION,
                        0,
                        &Reply::Error(e),
                        None,
                        &mut write_scratch,
                    );
                    return;
                }
                Err(FrameReadError::Io(_)) => return,
            };
        let (frame_version, frame_request_id) = (frame.version, frame.request_id);
        // The deadline clock starts at frame receipt, *before* any injected
        // delay fault: a slow daemon burns the request's budget.
        let received = std::time::Instant::now();
        conn_frames += 1;
        if let Some(fault) = &shared.fault {
            match fault.on_frame(conn_frames) {
                FrameFault::None => {}
                FrameFault::Drop => {
                    stream.shutdown_both();
                    return;
                }
                FrameFault::Kill => {
                    shared.crash();
                    return;
                }
            }
        }
        // Admission: protocol ≥ 5 connections are shed with `Busy` when the
        // global in-flight budget is saturated (the client fails over or
        // backs off); older connections keep the blocking backpressure that
        // propagates through TCP.
        if frame_version >= 5 {
            if !shared.try_acquire_slot() {
                let reply = Reply::Busy { retry_after_ms: BUSY_RETRY_MS };
                send_reply(
                    &mut stream,
                    frame_version,
                    frame_request_id,
                    &reply,
                    None,
                    &mut write_scratch,
                );
                continue;
            }
        } else {
            shared.acquire_slot();
        }
        let handled = handle_frame(
            shared,
            &mut chunk_write,
            frame.version,
            frame.opcode,
            frame.payload,
            received,
        );
        let crashed = shared.fault_crashed();
        let mut shutdown = false;
        if !crashed {
            let truncate = shared.fault.as_ref().and_then(|f| f.truncate_reply_at(conn_frames));
            match handled {
                Handled::One(reply, stop) => {
                    shutdown = stop;
                    send_reply(
                        &mut stream,
                        frame_version,
                        frame_request_id,
                        &reply,
                        truncate,
                        &mut write_scratch,
                    );
                }
                Handled::Stream(mut gather) => {
                    // Stream the gathered bytes as bounded DataChunk frames;
                    // an injected truncation tears the first frame and
                    // severs the connection, like any torn reply.
                    let mut first = true;
                    loop {
                        let (reply, last) = gather.next_chunk();
                        let t = if first { truncate } else { None };
                        first = false;
                        send_reply(
                            &mut stream,
                            frame_version,
                            frame_request_id,
                            &reply,
                            t,
                            &mut write_scratch,
                        );
                        if t.is_some() {
                            shared.release_slot();
                            stream.shutdown_both();
                            return;
                        }
                        if last {
                            break;
                        }
                    }
                }
            }
            if truncate.is_some() {
                shared.release_slot();
                stream.shutdown_both();
                return;
            }
        }
        shared.release_slot();
        if crashed {
            // An injected kill or torn write fired while this request was
            // in flight: the "crashed" daemon never replies.
            shared.crash();
            return;
        }
        if shutdown {
            // Unblock the acceptor so it observes `stopping` and exits.
            let _ = NetStream::connect(&shared.addr);
            return;
        }
    }
}

/// Writes one reply frame in the requester's protocol version. With
/// `truncate` set, only that many bytes of the encoded frame are sent —
/// the injected torn-frame fault.
fn send_reply(
    stream: &mut &NetStream,
    version: u8,
    request_id: u64,
    reply: &Reply,
    truncate: Option<u64>,
    scratch: &mut Vec<u8>,
) {
    reply.encode_payload_at_into(version, scratch);
    let payload: &[u8] = scratch;
    match truncate {
        None => {
            let _ = wire::write_frame_at(stream, version, reply.opcode(), request_id, payload);
        }
        Some(keep) => {
            let mut buf = Vec::with_capacity(payload.len() + 16);
            let _ = wire::write_frame_at(&mut buf, version, reply.opcode(), request_id, payload);
            let keep = (keep as usize).min(buf.len());
            let _ = stream.write_all(&buf[..keep]);
            let _ = stream.flush();
        }
    }
}

/// How one decoded frame is answered.
enum Handled {
    /// A single reply, plus whether the daemon should begin shutting down.
    One(Reply, bool),
    /// A streamed gather: the connection loop pulls bounded `DataChunk`
    /// replies until the last one.
    Stream(ChunkGather),
}

/// Decodes and executes one request.
fn handle_frame(
    shared: &Shared,
    chunk_write: &mut Option<ChunkWrite>,
    version: u8,
    opcode: u8,
    payload: &[u8],
    received: std::time::Instant,
) -> Handled {
    let max_version = shared.config.max_version.min(PROTOCOL_VERSION);
    if !version_admitted(version, max_version) {
        let e = ProtocolError::new(
            ErrCode::UnsupportedVersion,
            format!(
                "version {version} is not supported (this daemon speaks \
                 {MIN_PROTOCOL_VERSION}..={max_version})"
            ),
        );
        return Handled::One(Reply::Error(e), false);
    }
    if !(op::OPEN..=op::WRITE_RESUME).contains(&opcode) {
        let e = ProtocolError::new(ErrCode::UnknownOp, format!("opcode {opcode:#04x}"));
        return Handled::One(Reply::Error(e), false);
    }
    let (request, deadline_ms) = match Request::decode_deadline_at(version, opcode, payload) {
        Ok(pair) => pair,
        Err(e) => return Handled::One(Reply::Error(e.into()), false),
    };
    if shared.stopping.load(Ordering::SeqCst) && !matches!(request, Request::Shutdown) {
        let e = ProtocolError::new(ErrCode::ShuttingDown, "daemon is stopping");
        return Handled::One(Reply::Error(e), false);
    }
    // Deadline check (protocol ≥ 5): a request whose propagated budget was
    // already spent — queueing, an injected delay, a slow disk upstream —
    // is answered without executing, so nothing is applied for work the
    // client has necessarily given up on.
    if deadline_ms > 0 && received.elapsed() >= Duration::from_millis(u64::from(deadline_ms)) {
        let e = ProtocolError::new(
            ErrCode::DeadlineExceeded,
            format!("deadline budget of {deadline_ms} ms expired before execution"),
        );
        return Handled::One(Reply::Error(e), false);
    }
    // Journal-backlog watermark: mutating requests degrade to `Busy` while
    // the un-checkpointed backlog is over the configured capacity, instead
    // of growing the journal toward ENOSPC. Chunk streams are shed only at
    // their first frame — a stream already admitted runs to completion.
    let starts_mutation = matches!(request, Request::Write { .. })
        || matches!(request, Request::WriteChunk { offset: 0, .. });
    if version >= 5 && starts_mutation && shared.over_watermark() {
        return Handled::One(Reply::Busy { retry_after_ms: BUSY_RETRY_MS }, false);
    }
    // Per-session in-flight cap: one hot stamped session cannot occupy
    // every slot of the daemon.
    let session = match &request {
        Request::Write { session, .. }
        | Request::WriteChunk { session, .. }
        | Request::ResumeQuery { session, .. } => *session,
        _ => 0,
    };
    let entered = version >= 5;
    if entered && !shared.enter_session(session) {
        return Handled::One(Reply::Busy { retry_after_ms: BUSY_RETRY_MS }, false);
    }
    let handled = match request {
        Request::Shutdown => {
            shared.stopping.store(true, Ordering::SeqCst);
            Handled::One(Reply::Ok, true)
        }
        Request::WriteChunk { .. } => {
            Handled::One(handle_write_chunk(shared, chunk_write, request), false)
        }
        Request::ReadChunk { file, compute, l_s, r_s, max_chunk } => {
            match prepare_read_chunk(shared, file, compute, l_s, r_s, max_chunk) {
                Ok(gather) => Handled::Stream(gather),
                Err(e) => Handled::One(Reply::Error(e), false),
            }
        }
        other => Handled::One(handle_request(shared, other), false),
    };
    if entered {
        shared.leave_session(session);
    }
    handled
}

fn handle_request(shared: &Shared, request: Request) -> Reply {
    match request {
        // The threaded server has no fair-queueing tier; the tenant id is
        // accepted (protocol ≥ 6) but only the reactor daemon meters it.
        Request::Open { file, subfile, len, tenant: _ } => handle_open(shared, file, subfile, len),
        Request::SetView { file, compute, element: _, view, proj_set, proj_period } => {
            let slot = match lookup(shared, file) {
                Ok(s) => s,
                Err(e) => return Reply::Error(e),
            };
            slot.stats.requests.fetch_add(1, Ordering::Relaxed);
            // Audit the full view pattern before accepting anything from it.
            let report = audit_pattern(&view, &AuditConfig::default());
            if report.has_errors() {
                let mut pa_codes: Vec<String> = report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .map(|d| d.code.as_str().to_string())
                    .collect();
                pa_codes.sort();
                pa_codes.dedup();
                let mut e = ProtocolError::new(
                    ErrCode::PatternRejected,
                    format!("{} error diagnostic(s) from parafile-audit", pa_codes.len()),
                );
                e.pa_codes = pa_codes;
                return Reply::Error(e);
            }
            // The projection set is not a tiling pattern, so the audit does
            // not apply — but it must still be a structurally valid nested
            // set.
            let set = match raw_to_set(&proj_set) {
                Ok(s) => s,
                Err(err) => {
                    return Reply::Error(ProtocolError::new(
                        ErrCode::Malformed,
                        format!("projection set: {err}"),
                    ))
                }
            };
            write(&slot.views).insert(compute, Projection { set, period: proj_period });
            Reply::Ok
        }
        Request::Write { file, compute, l_s, r_s, session, seq, payload } => {
            with_projection(shared, file, compute, l_s, r_s, |slot, proj| {
                // A stamped retry of a write already in the dedup window is
                // acknowledged with the original result, not re-applied.
                if session != 0 {
                    if let Some(written) = lock(&slot.dedup).get(session, seq) {
                        return Reply::WriteOk { written, replayed: true };
                    }
                }
                let mut store = lock(&slot.store);
                // Clip to the subfile before any arithmetic: bounds the
                // segment walk and makes boundary-crossing writes short
                // instead of fatal.
                let len = store.len();
                if len == 0 || l_s >= len {
                    lock(&slot.dedup).insert(session, seq, 0);
                    return Reply::WriteOk { written: 0, replayed: false };
                }
                let r_c = r_s.min(len - 1);
                let segs = proj.segments_between(l_s, r_c);
                let expect: u64 = segs.iter().map(|s| s.len()).sum();
                if (payload.len() as u64) < expect {
                    return Reply::Error(ProtocolError::new(
                        ErrCode::SizeMismatch,
                        format!("payload holds {} bytes, projection needs {expect}", payload.len()),
                    ));
                }
                // Journal the full intent before the first store byte moves
                // (write-ahead): a crash mid-scatter replays from here.
                {
                    let mut journal = lock(&slot.journal);
                    if journal.is_enabled() {
                        let record = IntentRecord {
                            session,
                            seq,
                            segments: segs.iter().map(|s| (s.l(), s.len())).collect(),
                            payload: payload[..expect as usize].to_vec(),
                        };
                        if let Err(e) = journal.append(&record) {
                            return Reply::Error(ProtocolError::new(
                                ErrCode::Internal,
                                format!("journal append: {e}"),
                            ));
                        }
                        slot.journal_pending.fetch_add(expect, Ordering::Relaxed);
                    }
                }
                let torn = shared.fault.as_ref().is_some_and(FaultInjector::on_write_torn)
                    && !segs.is_empty();
                let scatter = if torn {
                    // Injected crash after the first applied segment: the
                    // subfile is torn, the journaled intent is not.
                    // serve_connection suppresses the reply; recovery on the
                    // next Open must heal the remaining segments.
                    let first = &segs[0];
                    store.write_at(first.l(), &payload[..first.len() as usize])
                } else {
                    // Scatter straight from the frame payload, adjacent
                    // segment runs coalesced into single positioned writes.
                    store
                        .scatter(segs.iter().map(|s| (s.l(), s.len())), &payload[..expect as usize])
                        .map(|_| ())
                };
                if let Err(e) = scatter {
                    return Reply::Error(ProtocolError::new(
                        ErrCode::Internal,
                        format!("scatter write: {e}"),
                    ));
                }
                if torn {
                    return Reply::WriteOk { written: expect, replayed: false };
                }
                // Refresh the page checksums the scatter touched (a torn
                // write skips this: the daemon "crashed", and the next
                // Open rebuilds the map from the recovered bytes).
                {
                    let mut sums = lock(&slot.sums);
                    for s in &segs {
                        if let Err(e) = sums.record_write(&mut store, s.l(), s.len()) {
                            return Reply::Error(ProtocolError::new(
                                ErrCode::Internal,
                                format!("checksum update: {e}"),
                            ));
                        }
                    }
                }
                lock(&slot.dedup).insert(session, seq, expect);
                slot.stats.bytes_written.fetch_add(expect, Ordering::Relaxed);
                slot.stats.fragments.fetch_add(segs.len() as u64, Ordering::Relaxed);
                Reply::WriteOk { written: expect, replayed: false }
            })
        }
        Request::Read { file, compute, l_s, r_s } => {
            with_projection(shared, file, compute, l_s, r_s, |slot, proj| {
                let mut store = lock(&slot.store);
                let len = store.len();
                if len == 0 || l_s >= len {
                    return Reply::Data { payload: Vec::new() };
                }
                let r_c = r_s.min(len - 1);
                let segs = proj.segments_between(l_s, r_c);
                // Verify the stored pages before serving them: a mismatch
                // is answered as ChecksumMismatch so a replicated client
                // fails over to another copy and queues this one for
                // repair instead of propagating silent corruption.
                {
                    let sums = lock(&slot.sums);
                    let mut bad = 0u64;
                    for s in &segs {
                        match sums.verify_range(&mut store, s.l(), s.len()) {
                            Ok(n) => bad += n,
                            Err(e) => {
                                return Reply::Error(ProtocolError::new(
                                    ErrCode::Internal,
                                    format!("checksum verify: {e}"),
                                ))
                            }
                        }
                    }
                    if bad > 0 {
                        slot.stats.checksum_errors.fetch_add(bad, Ordering::Relaxed);
                        return Reply::Error(ProtocolError::new(
                            ErrCode::ChecksumMismatch,
                            format!("{bad} page(s) failed CRC32C verification"),
                        ));
                    }
                }
                let mut out = Vec::with_capacity(segs.iter().map(|s| s.len() as usize).sum());
                // Gather with adjacent runs coalesced into single reads.
                if let Err(e) = store.gather(segs.iter().map(|s| (s.l(), s.len())), &mut out) {
                    return Reply::Error(ProtocolError::new(
                        ErrCode::Internal,
                        format!("gather read: {e}"),
                    ));
                }
                slot.stats.bytes_read.fetch_add(out.len() as u64, Ordering::Relaxed);
                slot.stats.fragments.fetch_add(segs.len() as u64, Ordering::Relaxed);
                Reply::Data { payload: out }
            })
        }
        Request::Flush { file } => match lookup(shared, file) {
            Ok(slot) => {
                slot.stats.requests.fetch_add(1, Ordering::Relaxed);
                if shared.fault.as_ref().is_some_and(FaultInjector::on_flush) {
                    return Reply::Error(ProtocolError::new(
                        ErrCode::Internal,
                        "injected flush failure",
                    ));
                }
                let mut store = lock(&slot.store);
                // A flush makes the store durable, so the journaled intents
                // covering it are redundant: checkpoint (flush + truncate),
                // then persist the checksum sidecar the durable bytes match.
                match lock(&slot.journal)
                    .checkpoint(&mut store)
                    .and_then(|()| store.flush())
                    .and_then(|()| lock(&slot.sums).flush())
                {
                    Ok(()) => {
                        slot.journal_pending.store(0, Ordering::Relaxed);
                        Reply::Ok
                    }
                    Err(e) => Reply::Error(ProtocolError::new(ErrCode::Internal, e.to_string())),
                }
            }
            Err(e) => Reply::Error(e),
        },
        Request::Stat { file } => match lookup(shared, file) {
            Ok(slot) => {
                slot.stats.requests.fetch_add(1, Ordering::Relaxed);
                let len = lock(&slot.store).len();
                let views = read(&slot.views).len() as u64;
                Reply::Stat(StatInfo {
                    len,
                    views,
                    requests: slot.stats.requests.load(Ordering::Relaxed),
                    bytes_written: slot.stats.bytes_written.load(Ordering::Relaxed),
                    bytes_read: slot.stats.bytes_read.load(Ordering::Relaxed),
                    fragments: slot.stats.fragments.load(Ordering::Relaxed),
                    checksum_errors: slot.stats.checksum_errors.load(Ordering::Relaxed),
                })
            }
            Err(e) => Reply::Error(e),
        },
        Request::Fetch { file } => match lookup(shared, file) {
            Ok(slot) => {
                slot.stats.requests.fetch_add(1, Ordering::Relaxed);
                let mut store = lock(&slot.store);
                // Fetch is the scrub driver's copy-health probe: a full
                // verification failure marks this copy Corrupt remotely.
                match lock(&slot.sums).verify_all(&mut store) {
                    Ok(0) => {}
                    Ok(bad) => {
                        slot.stats.checksum_errors.fetch_add(bad, Ordering::Relaxed);
                        return Reply::Error(ProtocolError::new(
                            ErrCode::ChecksumMismatch,
                            format!("{bad} page(s) failed CRC32C verification"),
                        ));
                    }
                    Err(e) => {
                        return Reply::Error(ProtocolError::new(ErrCode::Internal, e.to_string()))
                    }
                }
                match store.read_all() {
                    Ok(payload) => Reply::Data { payload },
                    Err(e) => Reply::Error(ProtocolError::new(ErrCode::Internal, e.to_string())),
                }
            }
            Err(e) => Reply::Error(e),
        },
        Request::Ping => Reply::Pong { epoch: shared.epoch, max_chunk: shared.config.max_chunk },
        Request::ResumeQuery { file, session, seq } => match lookup(shared, file) {
            Ok(slot) => {
                slot.stats.requests.fetch_add(1, Ordering::Relaxed);
                let offset = if session == 0 {
                    0
                } else {
                    let dedup = lock(&slot.dedup);
                    // A completed stamp means the whole write applied: the
                    // retried stream is answered as a replay, so it should
                    // restart from 0, not resume.
                    if dedup.get(session, seq).is_some() {
                        0
                    } else {
                        dedup.progress(session, seq).unwrap_or(0)
                    }
                };
                Reply::ResumeAt { offset }
            }
            Err(e) => Reply::Error(e),
        },
        // Open/SetView/Write/Read handled above; Shutdown and the chunked
        // requests are dispatched in handle_frame.
        Request::Shutdown | Request::WriteChunk { .. } | Request::ReadChunk { .. } => Reply::Ok,
    }
}

fn handle_open(shared: &Shared, file: u64, subfile: u32, len: u64) -> Reply {
    let mut files = write(&shared.files);
    if let Some(slot) = files.get(&file) {
        slot.stats.requests.fetch_add(1, Ordering::Relaxed);
        let existing_len = lock(&slot.store).len();
        return if slot.subfile == subfile && existing_len == len {
            Reply::Ok // idempotent reopen
        } else {
            Reply::Error(ProtocolError::new(
                ErrCode::FileMismatch,
                format!(
                    "file {file} already open as subfile {} with {existing_len} bytes",
                    slot.subfile
                ),
            ))
        };
    }
    // Open preserving any pre-crash bytes: a directory-backed subfile that
    // survived a daemon restart is recovered (journal replay), not zeroed.
    let opened =
        SubfileStore::open_or_create(&shared.config.backend, file as usize, subfile as usize, len);
    let (mut store, existed) = match opened {
        Ok(pair) => pair,
        Err(e) => return Reply::Error(ProtocolError::new(ErrCode::Internal, e.to_string())),
    };
    let mut journal = match Journal::open(&shared.config.backend, file as usize, subfile as usize) {
        Ok(j) => j,
        Err(e) => return Reply::Error(ProtocolError::new(ErrCode::Internal, e.to_string())),
    };
    let mut dedup = DedupWindow::new(shared.config.dedup_window);
    let mut replayed_intents = false;
    if existed {
        if store.len() != len {
            return Reply::Error(ProtocolError::new(
                ErrCode::FileMismatch,
                format!(
                    "subfile survives on disk with {} bytes, open asked for {len}",
                    store.len()
                ),
            ));
        }
        // Replay intents a crash may have left half-applied, and remember
        // their retry stamps so post-crash retries stay exactly-once.
        match journal.recover(&mut store) {
            Ok(report) => {
                replayed_intents = report.replayed > 0;
                for (session, seq, written) in report.dedup {
                    dedup.insert(session, seq, written);
                }
            }
            Err(e) => {
                return Reply::Error(ProtocolError::new(
                    ErrCode::Internal,
                    format!("journal recovery: {e}"),
                ))
            }
        }
    } else if let Err(e) = journal.reset() {
        // A fresh subfile must not inherit a dead daemon's intents.
        return Reply::Error(ProtocolError::new(ErrCode::Internal, e.to_string()));
    }
    // The sidecar checksum map predates any intents replayed above, so it
    // is only trusted for a cleanly-restarted subfile; otherwise the map
    // is rebuilt from the recovered bytes.
    let sums = match ChecksumMap::for_store(
        &shared.config.backend,
        file as usize,
        subfile as usize,
        &mut store,
        existed && !replayed_intents,
    ) {
        Ok(s) => s,
        Err(e) => {
            return Reply::Error(ProtocolError::new(
                ErrCode::Internal,
                format!("checksum map: {e}"),
            ))
        }
    };
    let slot = Arc::new(FileSlot {
        subfile,
        store: Mutex::new(store),
        journal: Mutex::new(journal),
        dedup: Mutex::new(dedup),
        sums: Mutex::new(sums),
        views: RwLock::new(HashMap::new()),
        stats: Stats::default(),
        journal_pending: AtomicU64::new(0),
    });
    slot.stats.requests.fetch_add(1, Ordering::Relaxed);
    files.insert(file, slot);
    Reply::Ok
}

fn lookup(shared: &Shared, file: u64) -> Result<Arc<FileSlot>, ProtocolError> {
    read(&shared.files)
        .get(&file)
        .cloned()
        .ok_or_else(|| ProtocolError::new(ErrCode::UnknownFile, format!("file {file}")))
}

/// Shared prologue of `Write`/`Read`: resolve the file slot and the
/// requesting compute node's projection, validate the interval, count the
/// request.
fn with_projection(
    shared: &Shared,
    file: u64,
    compute: u32,
    l_s: u64,
    r_s: u64,
    body: impl FnOnce(&FileSlot, &Projection) -> Reply,
) -> Reply {
    let slot = match lookup(shared, file) {
        Ok(s) => s,
        Err(e) => return Reply::Error(e),
    };
    slot.stats.requests.fetch_add(1, Ordering::Relaxed);
    if l_s > r_s {
        return Reply::Error(ProtocolError::new(
            ErrCode::BadRange,
            format!("interval [{l_s}, {r_s}] is empty"),
        ));
    }
    let proj = match read(&slot.views).get(&compute) {
        Some(p) => p.clone(),
        None => {
            return Reply::Error(ProtocolError::new(
                ErrCode::NoView,
                format!("compute node {compute} has no view on file {file}"),
            ))
        }
    };
    body(&slot, &proj)
}

// ---------------------------------------------------------------------------
// Chunked streaming (protocol ≥ 3, DESIGN.md §13)

/// Walks `runs` from a `(run_idx, run_pos)` cursor, taking at most `want`
/// bytes of `(offset, len)` sub-runs and advancing the cursor.
fn take_runs(
    runs: &[(u64, u64)],
    run_idx: &mut usize,
    run_pos: &mut u64,
    mut want: u64,
) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    while want > 0 && *run_idx < runs.len() {
        let (off, len) = runs[*run_idx];
        let n = (len - *run_pos).min(want);
        out.push((off + *run_pos, n));
        *run_pos += n;
        want -= n;
        if *run_pos == len {
            *run_idx += 1;
            *run_pos = 0;
        }
    }
    out
}

/// One in-progress chunked write on a connection.
///
/// Chunk frames of a single logical write arrive back to back; the daemon
/// applies each chunk's bytes straight into the store as they arrive (the
/// segment-run cursor advances with the payload), journals each chunk
/// before applying it, and keeps the `(session, seq)` dedup discipline of
/// monolithic writes: only the *final* chunk's journal record carries the
/// stamp, so crash recovery repopulates the dedup window only for writes
/// whose stream completed — an interrupted stream is re-applied in full by
/// the client's retry.
struct ChunkWrite {
    /// The typed stream automaton: pins the stream identity and enforces
    /// contiguity, the declared total, and the final-chunk arithmetic.
    stream: WriteStream,
    mode: ChunkMode,
}

enum ChunkMode {
    /// Applying chunks into the store as they arrive.
    Apply {
        slot: Arc<FileSlot>,
        /// Clipped projection segment runs `(offset, len)` in payload order.
        runs: Vec<(u64, u64)>,
        /// Gathered-payload bytes the runs cover (the `written` answer).
        expect: u64,
        /// Payload bytes scattered so far.
        applied: u64,
        run_idx: usize,
        run_pos: u64,
    },
    /// The stream's stamp hit the dedup window: acknowledge every chunk
    /// without touching the store and answer the final chunk with the
    /// original result.
    Replay { slot: Arc<FileSlot>, written: u64 },
    /// The stream failed (validation, journal or storage error): swallow
    /// the remaining chunks, answering each with the same error.
    Failed(ProtocolError),
}

/// Resolves the server-side mode for a chunk stream's first frame: file
/// lookup, range/view validation, dedup check, and the projection walk.
fn start_chunk_mode(shared: &Shared, h: &ChunkHeader) -> ChunkMode {
    let slot = match lookup(shared, h.file) {
        Ok(s) => s,
        Err(e) => return ChunkMode::Failed(e),
    };
    if h.l_s > h.r_s {
        let e = ProtocolError::new(
            ErrCode::BadRange,
            format!("interval [{}, {}] is empty", h.l_s, h.r_s),
        );
        return ChunkMode::Failed(e);
    }
    let proj = match read(&slot.views).get(&h.compute) {
        Some(p) => p.clone(),
        None => {
            let e = ProtocolError::new(
                ErrCode::NoView,
                format!("compute node {} has no view on file {}", h.compute, h.file),
            );
            return ChunkMode::Failed(e);
        }
    };
    if h.session != 0 {
        let hit = lock(&slot.dedup).get(h.session, h.seq);
        if let Some(written) = hit {
            return ChunkMode::Replay { slot, written };
        }
    }
    let len = lock(&slot.store).len();
    let runs: Vec<(u64, u64)> = if len == 0 || h.l_s >= len {
        Vec::new()
    } else {
        proj.segments_between(h.l_s, h.r_s.min(len - 1)).iter().map(|s| (s.l(), s.len())).collect()
    };
    let expect: u64 = runs.iter().map(|&(_, n)| n).sum();
    if h.total < expect {
        let e = ProtocolError::new(
            ErrCode::SizeMismatch,
            format!("stream declares {} bytes, projection needs {expect}", h.total),
        );
        return ChunkMode::Failed(e);
    }
    ChunkMode::Apply { slot, runs, expect, applied: 0, run_idx: 0, run_pos: 0 }
}

fn handle_write_chunk(shared: &Shared, state: &mut Option<ChunkWrite>, request: Request) -> Reply {
    let Request::WriteChunk { file, compute, l_s, r_s, session, seq, offset, total, last, data } =
        request
    else {
        // handle_frame dispatches on the opcode, so any other variant here
        // is a daemon defect — answered as a typed error, never a panic on
        // the connection thread.
        return Reply::Error(ProtocolError::new(
            ErrCode::Internal,
            "chunk handler invoked on a non-chunk request",
        ));
    };
    let header = ChunkHeader {
        file,
        compute,
        l_s,
        r_s,
        session,
        seq,
        offset,
        total,
        last,
        len: data.len() as u64,
    };
    if offset == 0 {
        // First chunk of a stream (any abandoned predecessor is dropped —
        // starting over is the client's resync).
        *state = Some(ChunkWrite {
            stream: WriteStream::start(&header),
            mode: start_chunk_mode(shared, &header),
        });
    } else if !state.as_ref().is_some_and(|cw| cw.stream.continues(&header)) {
        // A mid-stream first frame is accepted only as a resume: the
        // stream's stamp must have recorded exactly this much progress
        // (the client learned the offset from ResumeQuery). The segment
        // cursor is fast-forwarded past the bytes the earlier attempt
        // already applied and journaled.
        let resumable = session != 0
            && lookup(shared, file)
                .is_ok_and(|slot| lock(&slot.dedup).progress(session, seq) == Some(offset));
        if resumable {
            let mut mode = start_chunk_mode(shared, &header);
            if let ChunkMode::Apply { runs, expect, applied, run_idx, run_pos, .. } = &mut mode {
                let skip = offset.min(*expect);
                let _ = take_runs(runs, run_idx, run_pos, skip);
                *applied = skip;
            }
            *state = Some(ChunkWrite { stream: WriteStream::resume(&header), mode });
        } else {
            *state = None;
            return Reply::Error(ProtocolError::new(
                ErrCode::Malformed,
                "write chunk does not continue the in-progress stream",
            ));
        }
    }
    let Some(cw) = state.as_mut() else {
        return Reply::Error(ProtocolError::new(
            ErrCode::Internal,
            "chunk stream state missing after installation",
        ));
    };
    if let ChunkMode::Apply { slot, .. } | ChunkMode::Replay { slot, .. } = &cw.mode {
        slot.stats.requests.fetch_add(1, Ordering::Relaxed);
    }
    // Stream arithmetic must stay consistent with the declared total; the
    // automaton rejects overruns and short finals before a byte lands.
    if let Err(violation) = cw.stream.accept(&header) {
        *state = None;
        return Reply::Error(ProtocolError::new(ErrCode::Malformed, violation.to_string()));
    }
    let result: Result<Reply, ProtocolError> = match &mut cw.mode {
        ChunkMode::Failed(e) => Ok(Reply::Error(e.clone())),
        ChunkMode::Replay { written, .. } => {
            if last {
                Ok(Reply::WriteOk { written: *written, replayed: true })
            } else {
                Ok(Reply::ChunkOk { offset })
            }
        }
        ChunkMode::Apply { slot, runs, expect, applied, run_idx, run_pos } => {
            let apply_n = (data.len() as u64).min(*expect - *applied);
            let sub = take_runs(runs, run_idx, run_pos, apply_n);
            let stamp = if last { (session, seq) } else { (0, 0) };
            let journaled: Result<(), ProtocolError> = {
                let mut journal = lock(&slot.journal);
                if journal.is_enabled() && (!sub.is_empty() || (last && session != 0)) {
                    let record = IntentRecord {
                        session: stamp.0,
                        seq: stamp.1,
                        segments: sub.clone(),
                        payload: data[..apply_n as usize].to_vec(),
                    };
                    journal
                        .append(&record)
                        .map(|()| {
                            slot.journal_pending.fetch_add(apply_n, Ordering::Relaxed);
                        })
                        .map_err(|e| {
                            ProtocolError::new(ErrCode::Internal, format!("journal append: {e}"))
                        })
                } else {
                    Ok(())
                }
            };
            journaled.and_then(|()| {
                let mut store = lock(&slot.store);
                // The injected torn-write fault fires on the stream's first
                // chunk: apply only the first sub-run, then "crash" (the
                // reply below is suppressed by serve_connection).
                let torn = offset == 0
                    && shared.fault.as_ref().is_some_and(FaultInjector::on_write_torn)
                    && !sub.is_empty();
                let scatter = if torn {
                    let (off0, n0) = sub[0];
                    store.write_at(off0, &data[..n0 as usize])
                } else {
                    store.scatter(sub.iter().copied(), &data[..apply_n as usize]).map(|_| ())
                };
                scatter.map_err(|e| {
                    ProtocolError::new(ErrCode::Internal, format!("scatter write: {e}"))
                })?;
                if !torn {
                    let mut sums = lock(&slot.sums);
                    for &(off, n) in &sub {
                        sums.record_write(&mut store, off, n).map_err(|e| {
                            ProtocolError::new(ErrCode::Internal, format!("checksum update: {e}"))
                        })?;
                    }
                }
                *applied += apply_n;
                if last && !torn {
                    lock(&slot.dedup).insert(session, seq, *expect);
                    slot.stats.bytes_written.fetch_add(*expect, Ordering::Relaxed);
                    slot.stats.fragments.fetch_add(runs.len() as u64, Ordering::Relaxed);
                } else if !last && !torn {
                    // Remember how far this stream's stamp has applied so a
                    // retry after a drop can resume instead of restarting.
                    lock(&slot.dedup).set_progress(session, seq, offset + data.len() as u64);
                }
                if last {
                    Ok(Reply::WriteOk { written: *expect, replayed: false })
                } else {
                    Ok(Reply::ChunkOk { offset })
                }
            })
        }
    };
    match result {
        Ok(reply) => {
            if last {
                *state = None;
            }
            reply
        }
        Err(e) => {
            if last {
                *state = None;
            } else {
                cw.mode = ChunkMode::Failed(e.clone());
            }
            Reply::Error(e)
        }
    }
}

/// A streamed gather in progress: [`serve_connection`] pulls bounded
/// `DataChunk` replies out of it until the last one, so the daemon never
/// materializes the full gathered payload.
struct ChunkGather {
    slot: Arc<FileSlot>,
    runs: Vec<(u64, u64)>,
    run_idx: usize,
    run_pos: u64,
    total: u64,
    sent: u64,
    chunk: u64,
}

impl ChunkGather {
    /// Gathers the next chunk. Returns the reply and whether the stream is
    /// finished (also true when the reply is an error).
    fn next_chunk(&mut self) -> (Reply, bool) {
        let want = self.chunk.min(self.total - self.sent);
        let sub = take_runs(&self.runs, &mut self.run_idx, &mut self.run_pos, want);
        let mut data = Vec::with_capacity(want as usize);
        if let Err(e) = lock(&self.slot.store).gather(sub.iter().copied(), &mut data) {
            let e = ProtocolError::new(ErrCode::Internal, format!("gather read: {e}"));
            return (Reply::Error(e), true);
        }
        let offset = self.sent;
        self.sent += want;
        let last = self.sent == self.total;
        self.slot.stats.bytes_read.fetch_add(want, Ordering::Relaxed);
        (Reply::DataChunk { offset, last, data }, last)
    }
}

fn prepare_read_chunk(
    shared: &Shared,
    file: u64,
    compute: u32,
    l_s: u64,
    r_s: u64,
    max_chunk: u32,
) -> Result<ChunkGather, ProtocolError> {
    let slot = lookup(shared, file)?;
    slot.stats.requests.fetch_add(1, Ordering::Relaxed);
    if l_s > r_s {
        return Err(ProtocolError::new(
            ErrCode::BadRange,
            format!("interval [{l_s}, {r_s}] is empty"),
        ));
    }
    let proj = read(&slot.views).get(&compute).cloned().ok_or_else(|| {
        ProtocolError::new(
            ErrCode::NoView,
            format!("compute node {compute} has no view on file {file}"),
        )
    })?;
    // Effective chunk size: what the client asked for, capped by the
    // daemon's own budget, and always small enough that a chunk frame
    // (header + offset + flag + data) fits the frame budget.
    let cap = if max_chunk == 0 { shared.config.max_chunk } else { max_chunk };
    let frame_room = shared.config.max_frame.saturating_sub(64).max(1);
    let chunk = u64::from(cap.min(shared.config.max_chunk).min(frame_room).max(1));
    let mut store = lock(&slot.store);
    let len = store.len();
    let runs: Vec<(u64, u64)> = if len == 0 || l_s >= len {
        Vec::new()
    } else {
        proj.segments_between(l_s, r_s.min(len - 1)).iter().map(|s| (s.l(), s.len())).collect()
    };
    // Verify the whole gather up front, before the first chunk streams: a
    // mismatch discovered mid-stream could not be reported cleanly.
    {
        let sums = lock(&slot.sums);
        let mut bad = 0u64;
        for &(off, n) in &runs {
            bad += sums.verify_range(&mut store, off, n).map_err(|e| {
                ProtocolError::new(ErrCode::Internal, format!("checksum verify: {e}"))
            })?;
        }
        if bad > 0 {
            slot.stats.checksum_errors.fetch_add(bad, Ordering::Relaxed);
            return Err(ProtocolError::new(
                ErrCode::ChecksumMismatch,
                format!("{bad} page(s) failed CRC32C verification"),
            ));
        }
    }
    drop(store);
    let total: u64 = runs.iter().map(|&(_, n)| n).sum();
    slot.stats.fragments.fetch_add(runs.len() as u64, Ordering::Relaxed);
    Ok(ChunkGather { slot, runs, run_idx: 0, run_pos: 0, total, sent: 0, chunk })
}
