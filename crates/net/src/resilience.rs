//! Resilience primitives: deadlines, retry budgets, circuit breakers, and
//! latency tracking for hedged reads (DESIGN.md §16).
//!
//! The cluster survives crashes and bit rot (DESIGN.md §11, §15); this
//! module is about nodes that are merely *slow* or *overloaded*. Four
//! small mechanisms compose into tail-tolerance:
//!
//! * [`Deadline`] — an absolute time budget attached to a logical
//!   operation, decremented at every propagation hop (session → worker →
//!   daemon) and carried on the wire as the protocol-v5 `deadline_ms`
//!   payload prefix;
//! * [`RetryBudget`] — a session-wide token bucket replacing unbounded
//!   per-call retries: every retry spends a token, every success refills a
//!   fraction, so a systemic outage runs the bucket dry and fails fast
//!   instead of multiplying load;
//! * [`BreakerCore`] / [`CircuitBreaker`] — a per-node circuit breaker
//!   (Closed → Open → HalfOpen with single-probe recovery) driven by
//!   timeouts, `Busy` replies and consecutive failures. The core is a pure
//!   value automaton over an abstract millisecond clock, so the
//!   `parafile-model` checker explores the *shipped* transition function —
//!   the wall-clock wrapper only supplies `Instant`-derived time;
//! * [`LatencyTracker`] — a bounded ring of recent per-node latencies
//!   whose p95 picks the hedged-read trigger delay.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Deadlines

/// An absolute time budget for one logical operation.
///
/// A deadline is set once at the operation's entry point and *propagated*:
/// every hop re-reads the remaining budget, so time spent queueing or
/// retrying at one layer shrinks what the next layer may spend. The wire
/// form is the remaining milliseconds at send time (`0` = unbounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: the operation may take as long as it takes.
    #[must_use]
    pub fn none() -> Self {
        Self { at: None }
    }

    /// A deadline `budget` from now.
    #[must_use]
    pub fn within(budget: Duration) -> Self {
        Self { at: Instant::now().checked_add(budget) }
    }

    /// Whether a budget is attached at all.
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        self.at.is_some()
    }

    /// Remaining budget; `None` when unbounded, `Some(0)` when expired.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.at.map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Whether the budget is spent.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.remaining().is_some_and(|r| r.is_zero())
    }

    /// The wire encoding of the remaining budget: `0` = unbounded, and a
    /// bounded-but-live deadline never encodes as 0 (it is floored to 1 ms)
    /// so the daemon cannot mistake "almost out of time" for "no limit".
    /// Callers must check [`expired`](Self::expired) before sending.
    #[must_use]
    pub fn wire_ms(&self) -> u32 {
        match self.remaining() {
            None => 0,
            Some(r) => u32::try_from(r.as_millis()).unwrap_or(u32::MAX).max(1),
        }
    }

    /// Clamps an I/O timeout to the remaining budget (never below 1 ms so
    /// socket timeouts stay representable). Unbounded deadlines leave the
    /// timeout untouched.
    #[must_use]
    pub fn clamp_timeout(&self, timeout: Duration) -> Duration {
        match self.remaining() {
            None => timeout,
            Some(r) => timeout.min(r.max(Duration::from_millis(1))),
        }
    }
}

// ---------------------------------------------------------------------------
// Retry budget

/// Milli-tokens per retry token (fixed-point so refill fractions stay
/// integer arithmetic on the atomic).
const MILLI: u64 = 1000;

/// A session-wide token bucket bounding the *total* retry volume.
///
/// Unbounded per-call retries turn a systemic outage into a retry storm:
/// every caller multiplies the load on the struggling peer. The budget
/// inverts that: retries spend from a shared bucket (one token each),
/// successes trickle a fraction of a token back, and when the bucket is
/// dry, failures surface immediately instead of retrying. Thread-safe and
/// lock-free — node workers on different threads share one budget through
/// an `Arc`.
#[derive(Debug)]
pub struct RetryBudget {
    millitokens: AtomicU64,
    cap: u64,
    refill: u64,
}

impl RetryBudget {
    /// A bucket starting full at `cap` tokens, refilling
    /// `refill_millitokens` (thousandths of a token) per recorded success.
    #[must_use]
    pub fn new(cap: u32, refill_millitokens: u32) -> Self {
        let cap = u64::from(cap.max(1)) * MILLI;
        Self { millitokens: AtomicU64::new(cap), cap, refill: u64::from(refill_millitokens) }
    }

    /// The session default: 10 tokens, a tenth of a token back per success
    /// (a sustained retry rate above ~10% of traffic runs dry).
    #[must_use]
    pub fn for_session() -> Self {
        Self::new(10, 100)
    }

    /// Spends one token for a retry. `false` = bucket dry, do not retry.
    #[must_use]
    pub fn try_spend(&self) -> bool {
        self.millitokens
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| t.checked_sub(MILLI))
            .is_ok()
    }

    /// Credits a successful call's refill fraction (saturating at the cap).
    pub fn record_success(&self) {
        let _ = self.millitokens.fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| {
            Some((t + self.refill).min(self.cap))
        });
    }

    /// Whole tokens currently available (observability / tests).
    #[must_use]
    pub fn tokens(&self) -> u32 {
        u32::try_from(self.millitokens.load(Ordering::Acquire) / MILLI).unwrap_or(u32::MAX)
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker

/// The breaker's three positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Healthy: requests flow, consecutive failures are counted.
    Closed,
    /// Tripped: requests are shed without touching the node until the
    /// open window elapses.
    Open,
    /// Recovering: exactly one probe request is allowed through; its
    /// outcome decides between re-closing and re-opening.
    HalfOpen,
}

/// What the breaker says about one prospective request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Admission {
    /// Send it (breaker closed).
    Allow,
    /// Send it *as the half-open probe*: its outcome must be reported.
    Probe,
    /// Do not send; fail over or mark dirty instead.
    Shed,
}

/// The pure breaker automaton over an abstract millisecond clock.
///
/// Value semantics (`Clone + Eq + Hash`) so the model checker can hold it
/// in explored states; the shipped [`CircuitBreaker`] drives this exact
/// transition function with wall-clock time. Transitions:
///
/// ```text
///            threshold consecutive failures
///   Closed ────────────────────────────────▶ Open
///     ▲                                       │ open_ms elapsed
///     │ probe succeeds                        ▼
///     └─────────────────────────────────── HalfOpen ──▶ Open (probe fails)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BreakerCore {
    threshold: u32,
    open_ms: u64,
    state: BreakerState,
    failures: u32,
    opened_at_ms: u64,
    probe_in_flight: bool,
}

impl BreakerCore {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// and staying open `open_ms` before allowing a probe.
    #[must_use]
    pub fn new(threshold: u32, open_ms: u64) -> Self {
        Self {
            threshold: threshold.max(1),
            open_ms,
            state: BreakerState::Closed,
            failures: 0,
            opened_at_ms: 0,
            probe_in_flight: false,
        }
    }

    /// Current position.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Consecutive failures observed while closed.
    #[must_use]
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Asks whether a request may go to the node at time `now_ms`.
    /// Stateful: the Open → HalfOpen transition happens here (the breaker
    /// has no timer of its own), and a `Probe` answer marks the single
    /// probe slot taken until its outcome is recorded.
    #[must_use]
    pub fn admit(&mut self, now_ms: u64) -> Admission {
        match self.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::Open => {
                if now_ms.saturating_sub(self.opened_at_ms) >= self.open_ms {
                    self.state = BreakerState::HalfOpen;
                    self.probe_in_flight = true;
                    Admission::Probe
                } else {
                    Admission::Shed
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    Admission::Shed
                } else {
                    self.probe_in_flight = true;
                    Admission::Probe
                }
            }
        }
    }

    /// Records a successful call (or probe): the breaker re-closes and the
    /// failure count resets.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.failures = 0;
        self.probe_in_flight = false;
    }

    /// Records a breaker-relevant failure (timeout, `Busy`/`Overloaded`,
    /// transport error) at time `now_ms`. A failed half-open probe
    /// re-opens immediately; `threshold` consecutive failures trip a
    /// closed breaker.
    pub fn record_failure(&mut self, now_ms: u64) {
        match self.state {
            BreakerState::Closed => {
                self.failures = self.failures.saturating_add(1);
                if self.failures >= self.threshold {
                    self.trip(now_ms);
                }
            }
            BreakerState::HalfOpen => self.trip(now_ms),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now_ms: u64) {
        self.state = BreakerState::Open;
        self.opened_at_ms = now_ms;
        self.probe_in_flight = false;
    }
}

/// The wall-clock wrapper around [`BreakerCore`] the session uses per
/// node: same automaton, time supplied from a fixed `Instant` origin.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    core: BreakerCore,
    born: Instant,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// and staying open `open_for` before probing.
    #[must_use]
    pub fn new(threshold: u32, open_for: Duration) -> Self {
        Self {
            core: BreakerCore::new(
                threshold,
                u64::try_from(open_for.as_millis()).unwrap_or(u64::MAX),
            ),
            born: Instant::now(),
        }
    }

    fn now_ms(&self) -> u64 {
        u64::try_from(self.born.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// See [`BreakerCore::admit`].
    #[must_use]
    pub fn admit(&mut self) -> Admission {
        let now = self.now_ms();
        self.core.admit(now)
    }

    /// See [`BreakerCore::record_success`].
    pub fn record_success(&mut self) {
        self.core.record_success();
    }

    /// See [`BreakerCore::record_failure`].
    pub fn record_failure(&mut self) {
        let now = self.now_ms();
        self.core.record_failure(now);
    }

    /// Current position.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.core.state()
    }
}

// ---------------------------------------------------------------------------
// Latency tracking (hedge trigger)

/// Ring capacity: enough samples for a stable p95, small enough to track
/// regime changes (a node turning slow) within ~a hundred requests.
const LATENCY_WINDOW: usize = 64;

/// A bounded ring of recent call latencies with a p95 read-out.
///
/// The session keeps one per node on the read path; the hedged-read delay
/// is the observed p95 (clamped to a configured floor/ceiling), so hedges
/// fire only for genuinely tail-slow calls — roughly one read in twenty —
/// instead of doubling all traffic.
#[derive(Debug, Clone)]
pub struct LatencyTracker {
    samples_us: Vec<u64>,
    next: usize,
}

impl LatencyTracker {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self { samples_us: Vec::with_capacity(LATENCY_WINDOW), next: 0 }
    }

    /// Records one observed latency.
    pub fn record(&mut self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        if self.samples_us.len() < LATENCY_WINDOW {
            self.samples_us.push(us);
        } else {
            self.samples_us[self.next] = us;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }

    /// Number of samples currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Whether no samples have been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// The 95th-percentile latency over the window, `None` until at least
    /// one sample exists.
    #[must_use]
    pub fn p95(&self) -> Option<Duration> {
        if self.samples_us.is_empty() {
            return None;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        let idx = (sorted.len().saturating_sub(1)) * 95 / 100;
        Some(Duration::from_micros(sorted[idx]))
    }

    /// The hedge trigger delay: observed p95 clamped into
    /// `[floor, ceiling]`, or `floor` before any samples exist.
    #[must_use]
    pub fn hedge_delay(&self, floor: Duration, ceiling: Duration) -> Duration {
        self.p95().unwrap_or(floor).clamp(floor, ceiling)
    }
}

impl Default for LatencyTracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_budget_shrinks_and_expires() {
        let d = Deadline::none();
        assert!(!d.is_bounded() && !d.expired());
        assert_eq!(d.wire_ms(), 0);
        assert_eq!(d.clamp_timeout(Duration::from_secs(30)), Duration::from_secs(30));

        let d = Deadline::within(Duration::from_secs(2));
        assert!(d.is_bounded() && !d.expired());
        let ms = d.wire_ms();
        assert!(ms > 0 && ms <= 2000, "live budget on the wire: {ms}");
        assert!(d.clamp_timeout(Duration::from_secs(30)) <= Duration::from_secs(2));

        let d = Deadline::within(Duration::ZERO);
        assert!(d.expired());
        // Even an expired-but-bounded deadline never encodes as "none".
        assert_eq!(d.wire_ms(), 1);
        assert_eq!(d.clamp_timeout(Duration::from_secs(30)), Duration::from_millis(1));
    }

    #[test]
    fn retry_budget_runs_dry_and_refills() {
        let b = RetryBudget::new(2, 500);
        assert_eq!(b.tokens(), 2);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend(), "bucket dry");
        // Two successes at half a token each buy one retry back.
        b.record_success();
        assert!(!b.try_spend());
        b.record_success();
        assert!(b.try_spend());
        // Refill saturates at the cap.
        for _ in 0..100 {
            b.record_success();
        }
        assert_eq!(b.tokens(), 2);
    }

    #[test]
    fn breaker_trips_sheds_probes_and_recloses() {
        let mut b = BreakerCore::new(3, 100);
        assert_eq!(b.admit(0), Admission::Allow);
        b.record_failure(0);
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(2);
        assert_eq!(b.state(), BreakerState::Open, "third consecutive failure trips");
        // Shed while the open window runs.
        assert_eq!(b.admit(50), Admission::Shed);
        assert_eq!(b.state(), BreakerState::Open);
        // Window elapsed: exactly one probe.
        assert_eq!(b.admit(102), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(103), Admission::Shed, "single probe in flight");
        // Probe success re-closes and resets the count.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.failures(), 0);
        assert_eq!(b.admit(104), Admission::Allow);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = BreakerCore::new(1, 100);
        b.record_failure(0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(100), Admission::Probe);
        b.record_failure(100);
        assert_eq!(b.state(), BreakerState::Open, "failed probe re-opens");
        assert_eq!(b.admit(150), Admission::Shed, "window restarts from the re-open");
        assert_eq!(b.admit(200), Admission::Probe);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut b = BreakerCore::new(2, 100);
        b.record_failure(0);
        b.record_success();
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Closed, "non-consecutive failures do not trip");
        b.record_failure(2);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn wall_clock_breaker_drives_the_core() {
        let mut b = CircuitBreaker::new(1, Duration::from_millis(20));
        assert_eq!(b.admit(), Admission::Allow);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(), Admission::Shed);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.admit(), Admission::Probe);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn latency_p95_tracks_the_tail() {
        let mut t = LatencyTracker::new();
        assert_eq!(t.p95(), None);
        let floor = Duration::from_millis(5);
        let ceil = Duration::from_millis(500);
        assert_eq!(t.hedge_delay(floor, ceil), floor, "no samples: floor");
        for _ in 0..19 {
            t.record(Duration::from_millis(10));
        }
        t.record(Duration::from_millis(400));
        let p95 = t.p95().expect("samples exist");
        assert!(p95 >= Duration::from_millis(10));
        assert!(t.hedge_delay(floor, ceil) <= ceil);
        // The ring keeps the window bounded.
        for _ in 0..(LATENCY_WINDOW * 3) {
            t.record(Duration::from_millis(1));
        }
        assert_eq!(t.len(), LATENCY_WINDOW);
        assert_eq!(t.p95(), Some(Duration::from_millis(1)));
    }
}
