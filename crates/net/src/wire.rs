//! The length-prefixed binary wire protocol.
//!
//! Every message is one *frame*:
//!
//! ```text
//! ┌──────────┬─────────┬────────┬──────────────┬─────────────┐
//! │ len: u32 │ ver: u8 │ op: u8 │ request: u64 │ payload …   │
//! └──────────┴─────────┴────────┴──────────────┴─────────────┘
//!      └─ length of everything after the prefix (≥ 10)
//! ```
//!
//! All integers are little-endian. `len` counts the version byte, opcode
//! byte, request id and payload. Payloads carry the existing model
//! structures — partition patterns as raw FALLS trees (audited server-side
//! before use) and projections as nested-FALLS sets — plus gathered segment
//! bytes; redistribution stays segment-granular on the wire, exactly as in
//! the paper.
//!
//! Decoding never panics and never reads past the frame: malformed input is
//! reported as a typed [`WireError`], which the daemon answers with an
//! `Error` reply.

use crate::error::{ErrCode, ProtocolError};
use falls::{Falls, NestedFalls, NestedSet};
use parafile::model::{Partition, PartitionPattern};
use parafile_audit::{RawElement, RawFalls, RawPattern};
use std::io::{Read, Write};

/// Protocol version this crate speaks by default.
///
/// Version 2 is version 1 plus **additive** fault-tolerance fields (see
/// DESIGN.md §11 for the bump rules): a `(session, seq)` retry stamp on
/// `Write`, a `replayed` flag on `WriteOk`, and the `Ping`/`Pong` health
/// probe. Version 3 adds **chunked streaming** (DESIGN.md §13): the
/// `WriteChunk`/`ReadChunk` requests, the `ChunkOk`/`DataChunk` replies,
/// and a `max_chunk` capability field on `Pong` so clients can negotiate
/// chunking down to monolithic frames against older daemons. Version 4 adds
/// **resumable uploads and data checksums** (DESIGN.md §15): the
/// `ResumeQuery` request and `ResumeAt` reply let a retried chunked write
/// continue from the last chunk the daemon applied for a `(session, seq)`
/// stamp instead of restarting at offset 0, and `Stat` grows a
/// `checksum_errors` counter reporting CRC32C verification failures.
/// Version 5 adds **resilience** (DESIGN.md §16): every request payload is
/// prefixed by a `deadline_ms` budget (`0` = none) that the daemon enforces
/// before starting work, and the `Busy`/`Overloaded` replies let an
/// admission-controlled daemon shed load instead of queueing without bound.
/// Version 6 adds **tenancy** (DESIGN.md §18): `Open` carries the client's
/// `tenant` id so the daemon can meter per-tenant inflight quotas and run
/// deficit-round-robin dispatch between tenants; versions below 6 decode to
/// tenant 0 (the anonymous tenant).
/// Daemons keep speaking every version down to [`MIN_PROTOCOL_VERSION`] and
/// always answer in the version the request arrived with.
pub const PROTOCOL_VERSION: u8 = 6;

/// Oldest protocol version daemons still accept.
pub const MIN_PROTOCOL_VERSION: u8 = 1;

/// Bytes of the fixed header after the length prefix.
pub const HEADER_LEN: u32 = 1 + 1 + 8;

/// Default upper bound on a frame's `len` field (64 MiB).
pub const DEFAULT_MAX_FRAME: u32 = 64 << 20;

/// Maximum nesting depth accepted when decoding FALLS trees.
pub const MAX_TREE_DEPTH: usize = 16;

/// Maximum total FALLS nodes accepted per decoded pattern or set.
pub const MAX_TREE_NODES: usize = 65_536;

/// Request opcodes.
pub mod op {
    /// Create (or reopen) this daemon's subfile of a file.
    pub const OPEN: u8 = 0x01;
    /// Register a compute node's view: audited pattern + `PROJ_S`.
    pub const SET_VIEW: u8 = 0x02;
    /// Scatter gathered segment bytes into the subfile.
    pub const WRITE: u8 = 0x03;
    /// Gather segment bytes from the subfile.
    pub const READ: u8 = 0x04;
    /// Force the subfile to stable storage.
    pub const FLUSH: u8 = 0x05;
    /// Per-subfile statistics.
    pub const STAT: u8 = 0x06;
    /// The whole subfile, verbatim (diagnostics / verification).
    pub const FETCH: u8 = 0x07;
    /// Stop the daemon.
    pub const SHUTDOWN: u8 = 0x08;
    /// Liveness/health probe (protocol ≥ 2).
    pub const PING: u8 = 0x09;
    /// One bounded chunk of a streamed scatter write (protocol ≥ 3).
    pub const WRITE_CHUNK: u8 = 0x0A;
    /// Gather request answered as a stream of bounded chunks (protocol ≥ 3).
    pub const READ_CHUNK: u8 = 0x0B;
    /// Where did my interrupted chunked write get to? (protocol ≥ 4).
    pub const WRITE_RESUME: u8 = 0x0C;
    /// Success, no payload.
    pub const R_OK: u8 = 0x80;
    /// Write acknowledgment with the byte count actually stored.
    pub const R_WRITE_OK: u8 = 0x81;
    /// Gathered bytes.
    pub const R_DATA: u8 = 0x82;
    /// Statistics payload.
    pub const R_STAT: u8 = 0x83;
    /// Health probe answer with the daemon's boot epoch (protocol ≥ 2).
    pub const R_PONG: u8 = 0x84;
    /// Acknowledgment of one non-final write chunk (protocol ≥ 3).
    pub const R_CHUNK_OK: u8 = 0x85;
    /// One bounded chunk of a streamed gather reply (protocol ≥ 3).
    pub const R_DATA_CHUNK: u8 = 0x86;
    /// Answer to `WriteResume`: the offset a retried stream should resume
    /// from (protocol ≥ 4).
    pub const R_RESUME: u8 = 0x87;
    /// The daemon shed this request under admission control (protocol ≥ 5).
    pub const R_BUSY: u8 = 0x88;
    /// The daemon refused the whole connection under overload (protocol ≥ 5).
    pub const R_OVERLOADED: u8 = 0x89;
    /// Typed protocol error.
    pub const R_ERROR: u8 = 0xFF;
}

/// Decoding failures (never panics, never reads out of bounds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a field was complete.
    Truncated,
    /// Bytes remained after the last field.
    Trailing,
    /// A field held a structurally impossible value.
    BadValue(&'static str),
    /// A FALLS tree nested deeper than [`MAX_TREE_DEPTH`].
    TooDeep,
    /// A pattern or set carried more than [`MAX_TREE_NODES`] nodes.
    TooManyNodes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("payload truncated"),
            WireError::Trailing => f.write_str("trailing bytes after payload"),
            WireError::BadValue(what) => write!(f, "invalid value for {what}"),
            WireError::TooDeep => f.write_str("FALLS tree nested too deep"),
            WireError::TooManyNodes => f.write_str("FALLS tree has too many nodes"),
        }
    }
}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::new(ErrCode::Malformed, e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Byte-level cursor

pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub(crate) fn rest(&mut self) -> Vec<u8> {
        let out = self.buf[self.pos..].to_vec();
        self.pos = self.buf.len();
        out
    }

    pub(crate) fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadValue("utf-8 string"))
    }

    pub(crate) fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Trailing)
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// FALLS tree codec

fn put_raw_falls(out: &mut Vec<u8>, f: &RawFalls) {
    put_u64(out, f.l);
    put_u64(out, f.r);
    put_u64(out, f.s);
    put_u64(out, f.n);
    put_u32(out, f.inner.len() as u32);
    for child in &f.inner {
        put_raw_falls(out, child);
    }
}

fn get_raw_falls(
    c: &mut Cursor<'_>,
    depth: usize,
    nodes: &mut usize,
) -> Result<RawFalls, WireError> {
    if depth > MAX_TREE_DEPTH {
        return Err(WireError::TooDeep);
    }
    *nodes += 1;
    if *nodes > MAX_TREE_NODES {
        return Err(WireError::TooManyNodes);
    }
    let (l, r, s, n) = (c.u64()?, c.u64()?, c.u64()?, c.u64()?);
    let count = c.u32()? as usize;
    if count > MAX_TREE_NODES {
        return Err(WireError::TooManyNodes);
    }
    let mut inner = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        inner.push(get_raw_falls(c, depth + 1, nodes)?);
    }
    Ok(RawFalls { l, r, s, n, inner })
}

/// Encodes a raw pattern (displacement + elements of raw FALLS trees).
pub(crate) fn put_raw_pattern(out: &mut Vec<u8>, p: &RawPattern) {
    put_u64(out, p.displacement);
    put_u32(out, p.elements.len() as u32);
    for e in &p.elements {
        put_u32(out, e.families.len() as u32);
        for f in &e.families {
            put_raw_falls(out, f);
        }
    }
}

/// Decodes a raw pattern with depth and node budgets enforced.
pub(crate) fn get_raw_pattern(c: &mut Cursor<'_>) -> Result<RawPattern, WireError> {
    let displacement = c.u64()?;
    let element_count = c.u32()? as usize;
    if element_count > MAX_TREE_NODES {
        return Err(WireError::TooManyNodes);
    }
    let mut nodes = 0usize;
    let mut elements = Vec::with_capacity(element_count.min(64));
    for _ in 0..element_count {
        let fam_count = c.u32()? as usize;
        if fam_count > MAX_TREE_NODES {
            return Err(WireError::TooManyNodes);
        }
        let mut families = Vec::with_capacity(fam_count.min(64));
        for _ in 0..fam_count {
            families.push(get_raw_falls(c, 0, &mut nodes)?);
        }
        elements.push(RawElement::new(families));
    }
    Ok(RawPattern { displacement, elements })
}

fn put_raw_set(out: &mut Vec<u8>, families: &[RawFalls]) {
    put_u32(out, families.len() as u32);
    for f in families {
        put_raw_falls(out, f);
    }
}

fn get_raw_set(c: &mut Cursor<'_>) -> Result<Vec<RawFalls>, WireError> {
    let count = c.u32()? as usize;
    if count > MAX_TREE_NODES {
        return Err(WireError::TooManyNodes);
    }
    let mut nodes = 0usize;
    let mut families = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        families.push(get_raw_falls(c, 0, &mut nodes)?);
    }
    Ok(families)
}

/// Lowers a raw FALLS tree to a validated [`NestedFalls`].
pub fn raw_to_nested(raw: &RawFalls) -> Result<NestedFalls, falls::FallsError> {
    let falls = Falls::new(raw.l, raw.r, raw.s, raw.n)?;
    if raw.inner.is_empty() {
        return Ok(NestedFalls::leaf(falls));
    }
    let inner = raw.inner.iter().map(raw_to_nested).collect::<Result<Vec<_>, _>>()?;
    NestedFalls::with_inner(falls, inner)
}

/// Lowers raw sibling families to a validated [`NestedSet`].
pub fn raw_to_set(families: &[RawFalls]) -> Result<NestedSet, falls::FallsError> {
    if families.is_empty() {
        return Ok(NestedSet::empty());
    }
    let nested = families.iter().map(raw_to_nested).collect::<Result<Vec<_>, _>>()?;
    NestedSet::new(nested)
}

/// Lowers a raw pattern to a validated [`Partition`].
pub fn raw_to_partition(raw: &RawPattern) -> Result<Partition, parafile::Error> {
    let sets = raw
        .elements
        .iter()
        .map(|e| raw_to_set(&e.families).map_err(parafile::Error::from))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Partition::new(raw.displacement, PartitionPattern::new(sets)?))
}

// ---------------------------------------------------------------------------
// Requests

/// A decoded request frame payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Create (or idempotently reopen) this daemon's subfile of `file`.
    Open {
        /// File identifier (client-chosen, shared across all I/O nodes).
        file: u64,
        /// Which subfile of the file this daemon hosts.
        subfile: u32,
        /// Subfile length in bytes (zero-filled on creation).
        len: u64,
        /// Tenant id for fair-queueing and quota accounting (protocol ≥ 6;
        /// 0 = anonymous tenant on older peers).
        tenant: u32,
    },
    /// Register a compute node's view on `file`.
    SetView {
        /// File identifier.
        file: u64,
        /// Compute node (view owner) id.
        compute: u32,
        /// Element of `view` the compute node owns.
        element: u32,
        /// The full view partition, as an unvalidated raw tree — audited by
        /// the daemon before acceptance.
        view: RawPattern,
        /// `PROJ_S(V ∩ S)` families in the subfile's linear space.
        proj_set: Vec<RawFalls>,
        /// Subfile-linear bytes per aligned window of the projection.
        proj_period: u64,
    },
    /// Scatter `payload` into the projected segments of `[l_s, r_s]`.
    Write {
        /// File identifier.
        file: u64,
        /// Compute node whose registered projection drives the scatter.
        compute: u32,
        /// First subfile-linear offset of the access interval.
        l_s: u64,
        /// Last subfile-linear offset of the access interval.
        r_s: u64,
        /// Retry-dedup session stamp (protocol ≥ 2; 0 = unstamped, the
        /// daemon applies without dedup tracking).
        session: u64,
        /// Retry-dedup sequence number within `session`.
        seq: u64,
        /// Gathered segment bytes, in subfile-offset order.
        payload: Vec<u8>,
    },
    /// Gather the projected segments of `[l_s, r_s]`.
    Read {
        /// File identifier.
        file: u64,
        /// Compute node whose registered projection drives the gather.
        compute: u32,
        /// First subfile-linear offset.
        l_s: u64,
        /// Last subfile-linear offset.
        r_s: u64,
    },
    /// Force the subfile to stable storage.
    Flush {
        /// File identifier.
        file: u64,
    },
    /// Per-subfile statistics.
    Stat {
        /// File identifier.
        file: u64,
    },
    /// The whole subfile, verbatim.
    Fetch {
        /// File identifier.
        file: u64,
    },
    /// Stop the daemon gracefully.
    Shutdown,
    /// Liveness/health probe (protocol ≥ 2). Answered with `Pong` carrying
    /// the daemon's boot epoch, so clients can detect restarts.
    Ping,
    /// One bounded chunk of a streamed scatter write (protocol ≥ 3).
    ///
    /// A chunked write is the same logical operation as [`Request::Write`]:
    /// the gathered payload of `[l_s, r_s]` is split into frames of at most
    /// the negotiated chunk size, each carrying its byte `offset` into the
    /// gathered payload and the declared `total` length. The daemon applies
    /// each chunk straight into the store as it arrives, acknowledges
    /// non-final chunks with `ChunkOk` and the final chunk (`last`) with the
    /// ordinary `WriteOk`. The `(session, seq)` stamp dedups exactly like a
    /// monolithic write — a replayed stream is acknowledged without
    /// re-applying.
    WriteChunk {
        /// File identifier.
        file: u64,
        /// Compute node whose registered projection drives the scatter.
        compute: u32,
        /// First subfile-linear offset of the access interval.
        l_s: u64,
        /// Last subfile-linear offset of the access interval.
        r_s: u64,
        /// Retry-dedup session stamp (0 = unstamped).
        session: u64,
        /// Retry-dedup sequence number within `session`.
        seq: u64,
        /// Byte offset of `data` within the gathered payload.
        offset: u64,
        /// Total gathered payload length of the whole logical write.
        total: u64,
        /// Whether this is the final chunk of the stream.
        last: bool,
        /// This chunk's slice of the gathered payload.
        data: Vec<u8>,
    },
    /// Gather the projected segments of `[l_s, r_s]`, streamed back as
    /// `DataChunk` replies of at most `max_chunk` bytes each (protocol ≥ 3).
    ReadChunk {
        /// File identifier.
        file: u64,
        /// Compute node whose registered projection drives the gather.
        compute: u32,
        /// First subfile-linear offset.
        l_s: u64,
        /// Last subfile-linear offset.
        r_s: u64,
        /// Upper bound on each reply chunk's data length (the daemon may
        /// answer with smaller chunks, never larger).
        max_chunk: u32,
    },
    /// Ask how far a previously interrupted chunked write for this
    /// `(session, seq)` stamp got (protocol ≥ 4). Answered with `ResumeAt`:
    /// offset 0 when the daemon has no partial progress recorded (including
    /// after a daemon restart — progress is volatile, the journal covers the
    /// applied chunks), so a conservative client can always restart cleanly.
    ResumeQuery {
        /// File identifier.
        file: u64,
        /// Retry-dedup session stamp the interrupted stream carried.
        session: u64,
        /// Retry-dedup sequence number within `session`.
        seq: u64,
    },
}

impl Request {
    /// The request's opcode byte.
    #[must_use]
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Open { .. } => op::OPEN,
            Request::SetView { .. } => op::SET_VIEW,
            Request::Write { .. } => op::WRITE,
            Request::Read { .. } => op::READ,
            Request::Flush { .. } => op::FLUSH,
            Request::Stat { .. } => op::STAT,
            Request::Fetch { .. } => op::FETCH,
            Request::Shutdown => op::SHUTDOWN,
            Request::Ping => op::PING,
            Request::WriteChunk { .. } => op::WRITE_CHUNK,
            Request::ReadChunk { .. } => op::READ_CHUNK,
            Request::ResumeQuery { .. } => op::WRITE_RESUME,
        }
    }

    /// Whether the request may be retried after a transport failure.
    ///
    /// Reads, stats, fetches, opens, view registrations, flushes and pings
    /// are idempotent by construction; writes are made retry-safe by their
    /// `(session, seq)` stamp — the daemon's dedup window replays the
    /// original acknowledgment instead of re-applying. Only `Shutdown` is
    /// excluded: after a successful shutdown the retry would report a
    /// spurious connect error.
    #[must_use]
    pub fn retry_safe(&self) -> bool {
        !matches!(self, Request::Shutdown)
    }

    /// Encodes the payload bytes (everything after the frame header) in
    /// the current protocol version.
    #[must_use]
    pub fn encode_payload(&self) -> Vec<u8> {
        self.encode_payload_at(PROTOCOL_VERSION)
    }

    /// Encodes the payload bytes for protocol version `version`.
    #[must_use]
    pub fn encode_payload_at(&self, version: u8) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_payload_at_into(version, &mut out);
        out
    }

    /// [`encode_payload_at`](Self::encode_payload_at) into a caller-owned
    /// scratch buffer (cleared first), so per-connection encoders reuse one
    /// allocation across frames.
    pub fn encode_payload_at_into(&self, version: u8, out: &mut Vec<u8>) {
        self.encode_payload_deadline_into(version, 0, out);
    }

    /// Encodes the payload for protocol `version` carrying a `deadline_ms`
    /// budget (0 = no deadline). The deadline is a version-5 payload prefix
    /// shared by every request opcode — the remaining milliseconds of the
    /// caller's budget at send time, decremented at every propagation hop
    /// (session → worker → daemon). Versions below 5 cannot carry the field
    /// and silently drop it (the daemon then enforces nothing).
    pub fn encode_payload_deadline_into(&self, version: u8, deadline_ms: u32, out: &mut Vec<u8>) {
        out.clear();
        if version >= 5 {
            put_u32(out, deadline_ms);
        }
        self.encode_body(out, version);
    }

    fn encode_body(&self, out: &mut Vec<u8>, version: u8) {
        match self {
            Request::Open { file, subfile, len, tenant } => {
                put_u64(out, *file);
                put_u32(out, *subfile);
                put_u64(out, *len);
                if version >= 6 {
                    put_u32(out, *tenant);
                }
            }
            Request::SetView { file, compute, element, view, proj_set, proj_period } => {
                put_u64(out, *file);
                put_u32(out, *compute);
                put_u32(out, *element);
                put_raw_pattern(out, view);
                put_raw_set(out, proj_set);
                put_u64(out, *proj_period);
            }
            Request::Write { file, compute, l_s, r_s, session, seq, payload } => {
                put_u64(out, *file);
                put_u32(out, *compute);
                put_u64(out, *l_s);
                put_u64(out, *r_s);
                if version >= 2 {
                    put_u64(out, *session);
                    put_u64(out, *seq);
                }
                out.extend_from_slice(payload);
            }
            Request::Read { file, compute, l_s, r_s } => {
                put_u64(out, *file);
                put_u32(out, *compute);
                put_u64(out, *l_s);
                put_u64(out, *r_s);
            }
            Request::Flush { file } | Request::Stat { file } | Request::Fetch { file } => {
                put_u64(out, *file);
            }
            Request::Shutdown | Request::Ping => {}
            Request::WriteChunk {
                file,
                compute,
                l_s,
                r_s,
                session,
                seq,
                offset,
                total,
                last,
                data,
            } => {
                put_u64(out, *file);
                put_u32(out, *compute);
                put_u64(out, *l_s);
                put_u64(out, *r_s);
                put_u64(out, *session);
                put_u64(out, *seq);
                put_u64(out, *offset);
                put_u64(out, *total);
                out.push(u8::from(*last));
                out.extend_from_slice(data);
            }
            Request::ReadChunk { file, compute, l_s, r_s, max_chunk } => {
                put_u64(out, *file);
                put_u32(out, *compute);
                put_u64(out, *l_s);
                put_u64(out, *r_s);
                put_u32(out, *max_chunk);
            }
            Request::ResumeQuery { file, session, seq } => {
                put_u64(out, *file);
                put_u64(out, *session);
                put_u64(out, *seq);
            }
        }
    }

    /// Decodes a request from its opcode and payload bytes in the current
    /// protocol version.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Self, WireError> {
        Self::decode_at(PROTOCOL_VERSION, opcode, payload)
    }

    /// Decodes a request as protocol version `version` would frame it,
    /// dropping the v5 deadline prefix (see [`decode_deadline_at`]
    /// (Self::decode_deadline_at) to keep it).
    pub fn decode_at(version: u8, opcode: u8, payload: &[u8]) -> Result<Self, WireError> {
        Self::decode_deadline_at(version, opcode, payload).map(|(req, _)| req)
    }

    /// Decodes a request together with its deadline budget. At protocol ≥ 5
    /// every request payload starts with a `deadline_ms` prefix (0 = no
    /// deadline); older versions carry none and decode to 0.
    pub fn decode_deadline_at(
        version: u8,
        opcode: u8,
        payload: &[u8],
    ) -> Result<(Self, u32), WireError> {
        if version >= 5 {
            // An unknown opcode is reported as such even when the payload is
            // shorter than the deadline prefix, so UnknownOp vs Malformed
            // diagnostics stay stable across versions.
            if !(op::OPEN..=op::WRITE_RESUME).contains(&opcode) {
                return Err(WireError::BadValue("opcode"));
            }
            let mut c = Cursor::new(payload);
            let deadline_ms = c.u32()?;
            Ok((Self::decode_body_at(version, opcode, &payload[4..])?, deadline_ms))
        } else {
            Ok((Self::decode_body_at(version, opcode, payload)?, 0))
        }
    }

    fn decode_body_at(version: u8, opcode: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let req = match opcode {
            op::OPEN => {
                let file = c.u64()?;
                let subfile = c.u32()?;
                let len = c.u64()?;
                let tenant = if version >= 6 { c.u32()? } else { 0 };
                Request::Open { file, subfile, len, tenant }
            }
            op::SET_VIEW => {
                let file = c.u64()?;
                let compute = c.u32()?;
                let element = c.u32()?;
                let view = get_raw_pattern(&mut c)?;
                let proj_set = get_raw_set(&mut c)?;
                let proj_period = c.u64()?;
                Request::SetView { file, compute, element, view, proj_set, proj_period }
            }
            op::WRITE => {
                let file = c.u64()?;
                let compute = c.u32()?;
                let l_s = c.u64()?;
                let r_s = c.u64()?;
                let (session, seq) = if version >= 2 { (c.u64()?, c.u64()?) } else { (0, 0) };
                let payload = c.rest();
                return Ok(Request::Write { file, compute, l_s, r_s, session, seq, payload });
            }
            op::READ => {
                Request::Read { file: c.u64()?, compute: c.u32()?, l_s: c.u64()?, r_s: c.u64()? }
            }
            op::FLUSH => Request::Flush { file: c.u64()? },
            op::STAT => Request::Stat { file: c.u64()? },
            op::FETCH => Request::Fetch { file: c.u64()? },
            op::SHUTDOWN => Request::Shutdown,
            op::PING if version >= 2 => Request::Ping,
            op::WRITE_CHUNK if version >= 3 => {
                let file = c.u64()?;
                let compute = c.u32()?;
                let l_s = c.u64()?;
                let r_s = c.u64()?;
                let session = c.u64()?;
                let seq = c.u64()?;
                let offset = c.u64()?;
                let total = c.u64()?;
                let last = match c.take(1)?[0] {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::BadValue("last flag")),
                };
                let data = c.rest();
                return Ok(Request::WriteChunk {
                    file,
                    compute,
                    l_s,
                    r_s,
                    session,
                    seq,
                    offset,
                    total,
                    last,
                    data,
                });
            }
            op::READ_CHUNK if version >= 3 => Request::ReadChunk {
                file: c.u64()?,
                compute: c.u32()?,
                l_s: c.u64()?,
                r_s: c.u64()?,
                max_chunk: c.u32()?,
            },
            op::WRITE_RESUME if version >= 4 => {
                Request::ResumeQuery { file: c.u64()?, session: c.u64()?, seq: c.u64()? }
            }
            _ => return Err(WireError::BadValue("opcode")),
        };
        c.finish()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Replies

/// Per-subfile statistics returned by `Stat`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatInfo {
    /// Subfile length in bytes.
    pub len: u64,
    /// Number of registered views.
    pub views: u64,
    /// Requests served (all ops).
    pub requests: u64,
    /// Bytes stored by writes.
    pub bytes_written: u64,
    /// Bytes gathered by reads.
    pub bytes_read: u64,
    /// Scatter/gather fragments touched.
    pub fragments: u64,
    /// CRC32C verification failures detected on this subfile (protocol ≥ 4;
    /// always 0 on older connections).
    pub checksum_errors: u64,
}

/// A decoded reply frame payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Success, no payload.
    Ok,
    /// Write acknowledged; `written` bytes were actually stored (may be
    /// less than sent when the interval crossed the subfile boundary).
    WriteOk {
        /// Bytes stored.
        written: u64,
        /// This acknowledgment came from the retry-dedup window: the write
        /// had already been applied and was **not** re-applied (protocol
        /// ≥ 2; always `false` on version-1 connections).
        replayed: bool,
    },
    /// Gathered bytes.
    Data {
        /// Segment bytes in subfile-offset order (or the whole subfile for
        /// `Fetch`).
        payload: Vec<u8>,
    },
    /// Statistics.
    Stat(StatInfo),
    /// Health probe answer (protocol ≥ 2).
    Pong {
        /// Daemon boot epoch: changes on every daemon (re)start, letting a
        /// client distinguish "same daemon, slow" from "daemon restarted
        /// and lost its volatile state".
        epoch: u64,
        /// Largest chunk data length the daemon accepts per streamed frame
        /// (protocol ≥ 3; `0` on older connections = chunking unsupported).
        max_chunk: u32,
    },
    /// Acknowledgment of one non-final write chunk (protocol ≥ 3).
    ChunkOk {
        /// Echo of the acknowledged chunk's payload offset.
        offset: u64,
    },
    /// One bounded chunk of a streamed gather (protocol ≥ 3). The daemon
    /// answers a `ReadChunk` with one or more of these under the same
    /// request id; `last` marks the final frame.
    DataChunk {
        /// Byte offset of `data` within the gathered payload.
        offset: u64,
        /// Whether this is the final chunk of the stream.
        last: bool,
        /// This chunk's slice of the gathered payload.
        data: Vec<u8>,
    },
    /// Answer to `ResumeQuery` (protocol ≥ 4).
    ResumeAt {
        /// Gathered-payload offset from which a retried chunked write for
        /// the queried `(session, seq)` should resume; 0 means "start over"
        /// (no partial progress on record).
        offset: u64,
    },
    /// The daemon shed this one request under admission control (protocol
    /// ≥ 5): its queue, per-session in-flight cap, or disk-capacity
    /// watermark left no room. The request was **not** executed; a stamped
    /// retry after the hinted delay is safe.
    Busy {
        /// Daemon's backoff hint in milliseconds (0 = caller's choice).
        retry_after_ms: u32,
    },
    /// The daemon refused the whole connection under overload (protocol
    /// ≥ 5): the accept-side connection budget is exhausted. Sent with
    /// request id 0 before the connection closes.
    Overloaded {
        /// Daemon's backoff hint in milliseconds (0 = caller's choice).
        retry_after_ms: u32,
    },
    /// Typed protocol error.
    Error(ProtocolError),
}

impl Reply {
    /// The reply's opcode byte.
    #[must_use]
    pub fn opcode(&self) -> u8 {
        match self {
            Reply::Ok => op::R_OK,
            Reply::WriteOk { .. } => op::R_WRITE_OK,
            Reply::Data { .. } => op::R_DATA,
            Reply::Stat(_) => op::R_STAT,
            Reply::Pong { .. } => op::R_PONG,
            Reply::ChunkOk { .. } => op::R_CHUNK_OK,
            Reply::DataChunk { .. } => op::R_DATA_CHUNK,
            Reply::ResumeAt { .. } => op::R_RESUME,
            Reply::Busy { .. } => op::R_BUSY,
            Reply::Overloaded { .. } => op::R_OVERLOADED,
            Reply::Error(_) => op::R_ERROR,
        }
    }

    /// Encodes the payload bytes in the current protocol version.
    #[must_use]
    pub fn encode_payload(&self) -> Vec<u8> {
        self.encode_payload_at(PROTOCOL_VERSION)
    }

    /// Encodes the payload bytes for protocol version `version`.
    #[must_use]
    pub fn encode_payload_at(&self, version: u8) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_payload_at_into(version, &mut out);
        out
    }

    /// [`encode_payload_at`](Self::encode_payload_at) into a caller-owned
    /// scratch buffer (cleared first), so per-connection encoders reuse one
    /// allocation across frames.
    pub fn encode_payload_at_into(&self, version: u8, out: &mut Vec<u8>) {
        out.clear();
        match self {
            Reply::Ok => {}
            Reply::WriteOk { written, replayed } => {
                put_u64(out, *written);
                if version >= 2 {
                    out.push(u8::from(*replayed));
                }
            }
            Reply::Data { payload } => out.extend_from_slice(payload),
            Reply::Pong { epoch, max_chunk } => {
                put_u64(out, *epoch);
                if version >= 3 {
                    put_u32(out, *max_chunk);
                }
            }
            Reply::ChunkOk { offset } => put_u64(out, *offset),
            Reply::ResumeAt { offset } => put_u64(out, *offset),
            Reply::Busy { retry_after_ms } | Reply::Overloaded { retry_after_ms } => {
                put_u32(out, *retry_after_ms);
            }
            Reply::DataChunk { offset, last, data } => {
                put_u64(out, *offset);
                out.push(u8::from(*last));
                out.extend_from_slice(data);
            }
            Reply::Stat(s) => {
                put_u64(out, s.len);
                put_u64(out, s.views);
                put_u64(out, s.requests);
                put_u64(out, s.bytes_written);
                put_u64(out, s.bytes_read);
                put_u64(out, s.fragments);
                if version >= 4 {
                    put_u64(out, s.checksum_errors);
                }
            }
            Reply::Error(e) => {
                put_u16(out, e.code.as_u16());
                put_u16(out, e.pa_codes.len() as u16);
                for pa in &e.pa_codes {
                    put_string(out, pa);
                }
                put_string(out, &e.message);
            }
        }
    }

    /// Decodes a reply from its opcode and payload bytes in the current
    /// protocol version.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Self, WireError> {
        Self::decode_at(PROTOCOL_VERSION, opcode, payload)
    }

    /// Decodes a reply as protocol version `version` would frame it.
    pub fn decode_at(version: u8, opcode: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let reply = match opcode {
            op::R_OK => Reply::Ok,
            op::R_WRITE_OK => {
                let written = c.u64()?;
                let replayed = if version >= 2 {
                    match c.take(1)?[0] {
                        0 => false,
                        1 => true,
                        _ => return Err(WireError::BadValue("replayed flag")),
                    }
                } else {
                    false
                };
                Reply::WriteOk { written, replayed }
            }
            op::R_PONG if version >= 2 => {
                let epoch = c.u64()?;
                let max_chunk = if version >= 3 { c.u32()? } else { 0 };
                Reply::Pong { epoch, max_chunk }
            }
            op::R_CHUNK_OK if version >= 3 => Reply::ChunkOk { offset: c.u64()? },
            op::R_RESUME if version >= 4 => Reply::ResumeAt { offset: c.u64()? },
            op::R_BUSY if version >= 5 => Reply::Busy { retry_after_ms: c.u32()? },
            op::R_OVERLOADED if version >= 5 => Reply::Overloaded { retry_after_ms: c.u32()? },
            op::R_DATA_CHUNK if version >= 3 => {
                let offset = c.u64()?;
                let last = match c.take(1)?[0] {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::BadValue("last flag")),
                };
                return Ok(Reply::DataChunk { offset, last, data: c.rest() });
            }
            op::R_DATA => return Ok(Reply::Data { payload: c.rest() }),
            op::R_STAT => Reply::Stat(StatInfo {
                len: c.u64()?,
                views: c.u64()?,
                requests: c.u64()?,
                bytes_written: c.u64()?,
                bytes_read: c.u64()?,
                fragments: c.u64()?,
                checksum_errors: if version >= 4 { c.u64()? } else { 0 },
            }),
            op::R_ERROR => {
                let code = ErrCode::from_u16(c.u16()?).ok_or(WireError::BadValue("error code"))?;
                let pa_count = c.u16()? as usize;
                let mut pa_codes = Vec::with_capacity(pa_count.min(64));
                for _ in 0..pa_count {
                    pa_codes.push(c.string()?);
                }
                let message = c.string()?;
                Reply::Error(ProtocolError { code, pa_codes, message })
            }
            _ => return Err(WireError::BadValue("opcode")),
        };
        c.finish()?;
        Ok(reply)
    }
}

// ---------------------------------------------------------------------------
// Framing

/// A frame as read off the socket, header split out, payload raw.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Protocol version byte.
    pub version: u8,
    /// Opcode byte.
    pub opcode: u8,
    /// Request id (echoed in the matching reply).
    pub request_id: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Why a frame could not be read off the socket.
#[derive(Debug)]
pub enum FrameReadError {
    /// Socket failure or EOF.
    Io(std::io::Error),
    /// The connection closed cleanly between frames.
    Closed,
    /// The length prefix exceeds the budget; the frame was not read.
    TooLarge(u32),
    /// The length prefix is shorter than the fixed header.
    TooShort(u32),
}

/// Writes one frame with the current protocol version byte.
pub fn write_frame(
    w: &mut impl Write,
    opcode: u8,
    request_id: u64,
    payload: &[u8],
) -> std::io::Result<()> {
    write_frame_at(w, PROTOCOL_VERSION, opcode, request_id, payload)
}

/// Writes one frame carrying an explicit version byte (daemons answer in
/// the version the request arrived with).
pub fn write_frame_at(
    w: &mut impl Write,
    version: u8,
    opcode: u8,
    request_id: u64,
    payload: &[u8],
) -> std::io::Result<()> {
    let len = HEADER_LEN + payload.len() as u32;
    let mut head = [0u8; 14];
    head[0..4].copy_from_slice(&len.to_le_bytes());
    head[4] = version;
    head[5] = opcode;
    head[6..14].copy_from_slice(&request_id.to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()
}

/// A frame whose payload borrows a caller-owned scratch buffer — the
/// allocation-free counterpart of [`Frame`] returned by [`read_frame_buf`].
#[derive(Debug)]
pub struct FrameView<'a> {
    /// Protocol version byte.
    pub version: u8,
    /// Opcode byte.
    pub opcode: u8,
    /// Request id (echoed in the matching reply).
    pub request_id: u64,
    /// Payload bytes, borrowed from the scratch buffer.
    pub payload: &'a [u8],
}

/// Reads one frame, enforcing the size budget.
///
/// Returns [`FrameReadError::Closed`] only when the connection ends cleanly
/// *between* frames; EOF in the middle of a frame is an I/O error.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Frame, FrameReadError> {
    let mut scratch = Vec::new();
    let view = read_frame_buf(r, max_frame, &mut scratch)?;
    Ok(Frame {
        version: view.version,
        opcode: view.opcode,
        request_id: view.request_id,
        payload: view.payload.to_vec(),
    })
}

/// [`read_frame`] into a caller-owned scratch buffer: the frame body lands
/// in `scratch` (resized as needed, capacity retained across calls) and the
/// returned [`FrameView`] borrows its payload from it, so a connection loop
/// reads every frame through one recycled allocation.
pub fn read_frame_buf<'a>(
    r: &mut impl Read,
    max_frame: u32,
    scratch: &'a mut Vec<u8>,
) -> Result<FrameView<'a>, FrameReadError> {
    let mut len_buf = [0u8; 4];
    // Distinguish "no next frame" (clean close) from "frame cut short".
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Err(FrameReadError::Closed),
            Ok(0) => {
                return Err(FrameReadError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max_frame {
        return Err(FrameReadError::TooLarge(len));
    }
    if len < HEADER_LEN {
        return Err(FrameReadError::TooShort(len));
    }
    scratch.resize(len as usize, 0);
    r.read_exact(scratch).map_err(FrameReadError::Io)?;
    let version = scratch[0];
    let opcode = scratch[1];
    let mut id_bytes = [0u8; 8];
    id_bytes.copy_from_slice(&scratch[2..10]);
    Ok(FrameView {
        version,
        opcode,
        request_id: u64::from_le_bytes(id_bytes),
        payload: &scratch[10..],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure3_raw() -> RawPattern {
        RawPattern {
            displacement: 2,
            elements: (0..3)
                .map(|k| RawElement::new(vec![RawFalls::leaf(2 * k, 2 * k + 1, 6, 1)]))
                .collect(),
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Open { file: 7, subfile: 2, len: 4096, tenant: 0 },
            Request::SetView {
                file: 7,
                compute: 1,
                element: 1,
                view: figure3_raw(),
                proj_set: vec![RawFalls::nested(0, 3, 8, 2, vec![RawFalls::leaf(0, 0, 2, 2)])],
                proj_period: 8,
            },
            Request::Write {
                file: 7,
                compute: 1,
                l_s: 3,
                r_s: 90,
                session: 11,
                seq: 4,
                payload: vec![1, 2, 3],
            },
            Request::Read { file: 7, compute: 1, l_s: 0, r_s: 31 },
            Request::Flush { file: 7 },
            Request::Stat { file: 7 },
            Request::Fetch { file: 7 },
            Request::Shutdown,
            Request::Ping,
            Request::WriteChunk {
                file: 7,
                compute: 1,
                l_s: 3,
                r_s: 90,
                session: 11,
                seq: 4,
                offset: 4096,
                total: 8192,
                last: true,
                data: vec![9, 8, 7],
            },
            Request::ReadChunk { file: 7, compute: 1, l_s: 0, r_s: 31, max_chunk: 4096 },
            Request::ResumeQuery { file: 7, session: 11, seq: 4 },
        ];
        for req in reqs {
            let payload = req.encode_payload();
            let back = Request::decode(req.opcode(), &payload).expect("round trip");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn v1_frames_still_round_trip_without_the_additive_fields() {
        // A version-1 Write has no (session, seq); decoding it as v1 fills
        // the unstamped sentinel and keeps every payload byte.
        let req = Request::Write {
            file: 7,
            compute: 1,
            l_s: 3,
            r_s: 90,
            session: 0,
            seq: 0,
            payload: vec![1, 2, 3],
        };
        let v1 = req.encode_payload_at(1);
        assert_eq!(v1.len() + 16, req.encode_payload_at(2).len());
        assert_eq!(Request::decode_at(1, op::WRITE, &v1).unwrap(), req);
        // v1 has no Ping/Pong opcodes.
        assert_eq!(Request::decode_at(1, op::PING, &[]), Err(WireError::BadValue("opcode")));
        assert_eq!(Reply::decode_at(1, op::R_PONG, &[0; 8]), Err(WireError::BadValue("opcode")));
        // A v1 WriteOk is just the count; the replayed flag defaults off.
        let ack = Reply::WriteOk { written: 5, replayed: false };
        let v1 = ack.encode_payload_at(1);
        assert_eq!(v1.len(), 8);
        assert_eq!(Reply::decode_at(1, op::R_WRITE_OK, &v1).unwrap(), ack);
    }

    #[test]
    fn v2_frames_have_no_chunk_messages() {
        // Chunk opcodes are version-3 additions; v2 rejects them.
        for opc in [op::WRITE_CHUNK, op::READ_CHUNK] {
            assert_eq!(Request::decode_at(2, opc, &[0; 64]), Err(WireError::BadValue("opcode")));
        }
        for opc in [op::R_CHUNK_OK, op::R_DATA_CHUNK] {
            assert_eq!(Reply::decode_at(2, opc, &[0; 16]), Err(WireError::BadValue("opcode")));
        }
        // A v2 Pong is just the epoch; decoding it as v2 leaves the
        // capability field at its "no chunking" default.
        let pong = Reply::Pong { epoch: 9, max_chunk: 4096 };
        let v2 = pong.encode_payload_at(2);
        assert_eq!(v2.len(), 8);
        assert_eq!(
            Reply::decode_at(2, op::R_PONG, &v2).unwrap(),
            Reply::Pong { epoch: 9, max_chunk: 0 }
        );
        // v3 carries it through.
        let v3 = pong.encode_payload_at(3);
        assert_eq!(v3.len(), 12);
        assert_eq!(Reply::decode_at(3, op::R_PONG, &v3).unwrap(), pong);
    }

    #[test]
    fn v3_frames_have_no_resume_messages() {
        // Resume opcodes and the checksum counter are version-4 additions;
        // v3 rejects the former and never carries the latter.
        assert_eq!(
            Request::decode_at(3, op::WRITE_RESUME, &[0; 24]),
            Err(WireError::BadValue("opcode"))
        );
        assert_eq!(Reply::decode_at(3, op::R_RESUME, &[0; 8]), Err(WireError::BadValue("opcode")));
        let stat = Reply::Stat(StatInfo {
            len: 10,
            views: 2,
            requests: 5,
            bytes_written: 100,
            bytes_read: 50,
            fragments: 7,
            checksum_errors: 9,
        });
        let v3 = stat.encode_payload_at(3);
        assert_eq!(v3.len(), 48);
        match Reply::decode_at(3, op::R_STAT, &v3).unwrap() {
            Reply::Stat(s) => {
                assert_eq!(s.fragments, 7);
                assert_eq!(s.checksum_errors, 0, "v3 leaves the additive field defaulted");
            }
            other => panic!("unexpected reply {other:?}"),
        }
        let v4 = stat.encode_payload_at(4);
        assert_eq!(v4.len(), 56);
        assert_eq!(Reply::decode_at(4, op::R_STAT, &v4).unwrap(), stat);
    }

    #[test]
    fn v4_frames_have_no_resilience_messages() {
        // The deadline prefix and the shed replies are version-5 additions;
        // v4 rejects the opcodes and carries no prefix.
        assert_eq!(Reply::decode_at(4, op::R_BUSY, &[0; 4]), Err(WireError::BadValue("opcode")));
        assert_eq!(
            Reply::decode_at(4, op::R_OVERLOADED, &[0; 4]),
            Err(WireError::BadValue("opcode"))
        );
        let req = Request::Read { file: 7, compute: 1, l_s: 0, r_s: 31 };
        let v4 = req.encode_payload_at(4);
        let v5 = req.encode_payload_at(5);
        assert_eq!(v4.len() + 4, v5.len(), "v5 adds exactly the u32 deadline prefix");
        assert_eq!(Request::decode_at(4, op::READ, &v4).unwrap(), req);
        assert_eq!(Request::decode_deadline_at(4, op::READ, &v4).unwrap(), (req.clone(), 0));
        // The prefix carries the budget; 0 means "no deadline".
        let mut stamped = Vec::new();
        req.encode_payload_deadline_into(5, 1500, &mut stamped);
        assert_eq!(Request::decode_deadline_at(5, op::READ, &stamped).unwrap(), (req, 1500));
        // A truncated prefix is a typed error, not a panic.
        assert_eq!(
            Request::decode_deadline_at(5, op::READ, &stamped[..3]),
            Err(WireError::Truncated)
        );
        // Shed replies round-trip at v5.
        for reply in [Reply::Busy { retry_after_ms: 40 }, Reply::Overloaded { retry_after_ms: 0 }] {
            let payload = reply.encode_payload_at(5);
            assert_eq!(payload.len(), 4);
            assert_eq!(Reply::decode_at(5, reply.opcode(), &payload).unwrap(), reply);
        }
    }

    #[test]
    fn v5_open_frames_have_no_tenant_field() {
        // The tenant id on Open is a version-6 addition; v5 frames carry
        // none and decode to the anonymous tenant.
        let req = Request::Open { file: 7, subfile: 2, len: 4096, tenant: 31 };
        let v5 = req.encode_payload_at(5);
        let v6 = req.encode_payload_at(6);
        assert_eq!(v5.len() + 4, v6.len(), "v6 adds exactly the u32 tenant field");
        // Both versions start with the deadline prefix; strip it for the
        // body-level decode used here.
        assert_eq!(
            Request::decode_at(5, op::OPEN, &v5).unwrap(),
            Request::Open { file: 7, subfile: 2, len: 4096, tenant: 0 },
            "v5 decodes to the anonymous tenant"
        );
        assert_eq!(Request::decode_at(6, op::OPEN, &v6).unwrap(), req, "v6 carries it through");
        // A v6 Open truncated inside the tenant field is a typed error.
        assert_eq!(Request::decode_at(6, op::OPEN, &v6[..v6.len() - 2]), Err(WireError::Truncated));
    }

    #[test]
    fn replies_round_trip() {
        let replies = vec![
            Reply::Ok,
            Reply::WriteOk { written: 99, replayed: false },
            Reply::WriteOk { written: 99, replayed: true },
            Reply::Pong { epoch: 77, max_chunk: 1 << 18 },
            Reply::ChunkOk { offset: 4096 },
            Reply::DataChunk { offset: 0, last: false, data: b"xyz".to_vec() },
            Reply::DataChunk { offset: 3, last: true, data: vec![] },
            Reply::ResumeAt { offset: 8192 },
            Reply::Busy { retry_after_ms: 25 },
            Reply::Overloaded { retry_after_ms: 100 },
            Reply::Data { payload: b"abc".to_vec() },
            Reply::Stat(StatInfo {
                len: 10,
                views: 2,
                requests: 5,
                bytes_written: 100,
                bytes_read: 50,
                fragments: 7,
                checksum_errors: 3,
            }),
            Reply::Error(ProtocolError {
                code: ErrCode::PatternRejected,
                pa_codes: vec!["PA020".into()],
                message: "gap".into(),
            }),
        ];
        for reply in replies {
            let payload = reply.encode_payload();
            let back = Reply::decode(reply.opcode(), &payload).expect("round trip");
            assert_eq!(back, reply);
        }
    }

    #[test]
    fn truncated_payloads_are_typed_errors() {
        let req = Request::Read { file: 1, compute: 0, l_s: 0, r_s: 9 };
        let payload = req.encode_payload();
        for cut in 0..payload.len() {
            let err = Request::decode(req.opcode(), &payload[..cut]).unwrap_err();
            assert_eq!(err, WireError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Request::Flush { file: 1 }.encode_payload();
        payload.push(0);
        assert_eq!(Request::decode(op::FLUSH, &payload), Err(WireError::Trailing));
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        assert_eq!(Request::decode(0x6F, &[]), Err(WireError::BadValue("opcode")));
        assert_eq!(Reply::decode(0x00, &[]), Err(WireError::BadValue("opcode")));
    }

    #[test]
    fn deep_trees_are_bounded() {
        // A tree nested past MAX_TREE_DEPTH must be rejected, not recursed.
        let mut tree = RawFalls::leaf(0, 0, 1, 1);
        for _ in 0..(MAX_TREE_DEPTH + 2) {
            tree = RawFalls::nested(0, 0, 1, 1, vec![tree]);
        }
        let mut out = Vec::new();
        put_raw_set(&mut out, &[tree]);
        let mut c = Cursor::new(&out);
        assert_eq!(get_raw_set(&mut c), Err(WireError::TooDeep));
    }

    #[test]
    fn absurd_node_counts_are_bounded() {
        // Claim 2^31 families but supply none: must fail fast on the budget
        // or truncation, never attempt the allocation.
        let mut out = Vec::new();
        put_u32(&mut out, 1 << 31);
        let mut c = Cursor::new(&out);
        assert!(matches!(get_raw_set(&mut c), Err(WireError::TooManyNodes | WireError::Truncated)));
    }

    #[test]
    fn frames_round_trip_through_io() {
        let req = Request::Stat { file: 42 };
        let mut buf = Vec::new();
        write_frame(&mut buf, req.opcode(), 17, &req.encode_payload()).unwrap();
        let frame = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(frame.version, PROTOCOL_VERSION);
        assert_eq!(frame.opcode, op::STAT);
        assert_eq!(frame.request_id, 17);
        assert_eq!(Request::decode(frame.opcode, &frame.payload).unwrap(), req);
        // Clean close between frames.
        assert!(matches!(
            read_frame(&mut [].as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameReadError::Closed)
        ));
    }

    #[test]
    fn oversized_and_undersized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1u32 << 30).to_le_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameReadError::TooLarge(_))
        ));
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&[0, 0, 0]);
        assert!(matches!(
            read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameReadError::TooShort(3))
        ));
    }

    #[test]
    fn pattern_lowering_round_trips() {
        let raw = figure3_raw();
        let part = raw_to_partition(&raw).unwrap();
        assert_eq!(part.displacement(), 2);
        assert_eq!(part.element_count(), 3);
        assert_eq!(RawPattern::from_partition(&part).elements.len(), 3);
        // A structurally invalid tree fails with an error, not a panic.
        let bad = RawPattern::new(vec![RawElement::new(vec![RawFalls::leaf(5, 1, 6, 1)])]);
        assert!(raw_to_partition(&bad).is_err());
    }
}
