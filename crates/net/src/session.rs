//! The compute-node session: one parallel file over N I/O-node daemons.
//!
//! A [`Session`] plays the compute-node half of the paper's protocol
//! against real daemons. `set_view` compiles the `MAP_V∘MAP_S⁻¹` access
//! plan with [`parafile::redist::ViewPlan`] — exactly the planner the
//! simulated `Clusterfile` uses — keeps `PROJ_V(V∩S)` locally and ships
//! `PROJ_S(V∩S)` (plus the full raw view pattern, for the daemon's audit)
//! to each intersecting I/O node. `write` maps the interval extremities,
//! gathers view bytes per node and fans the messages out concurrently;
//! `read` runs the reverse path.

use crate::client::NodeClient;
use crate::error::NetError;
use crate::server::{serve, DaemonConfig, DaemonHandle};
use crate::wire::{Reply, Request, StatInfo};
use clusterfile::StorageBackend;
use parafile::mapping::Mapper;
use parafile::model::Partition;
use parafile::redist::{Projection, ViewPlan};
use parafile_audit::{RawFalls, RawPattern};
use std::collections::HashMap;
use std::sync::Mutex;

struct ViewState {
    view: Partition,
    element: usize,
    proj_view: Vec<Projection>,
    perfect_match: Vec<bool>,
}

struct FileState {
    physical: Partition,
    len: u64,
    views: HashMap<u32, ViewState>,
}

/// A compute node's connection to a set of I/O-node daemons, one subfile
/// per daemon (daemon order = subfile order).
pub struct Session {
    nodes: Vec<Mutex<NodeClient>>,
    files: HashMap<u64, FileState>,
}

/// A per-node request to fan out, with its target node index.
struct Outgoing {
    node: usize,
    request: Request,
}

impl Session {
    /// Connects lazily to one daemon per address (`host:port` or
    /// `unix:/path`); address order defines subfile order.
    #[must_use]
    pub fn connect(addrs: &[String]) -> Self {
        Self {
            nodes: addrs.iter().map(|a| Mutex::new(NodeClient::new(a))).collect(),
            files: HashMap::new(),
        }
    }

    /// Number of I/O nodes this session spans.
    #[must_use]
    pub fn io_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Fans `requests` out to their nodes concurrently and returns the
    /// replies in the same order.
    fn fan_out(&self, requests: Vec<Outgoing>) -> Vec<(usize, Result<Reply, NetError>)> {
        if requests.len() == 1 {
            // Skip thread spawn for the single-target case.
            let Outgoing { node, request } = requests.into_iter().next().expect("one request");
            let reply = self.nodes[node].lock().expect("node lock").call(&request);
            return vec![(node, reply)];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .into_iter()
                .map(|Outgoing { node, request }| {
                    let client = &self.nodes[node];
                    scope.spawn(move || (node, client.lock().expect("node lock").call(&request)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("fan-out thread")).collect()
        })
    }

    /// Like [`fan_out`](Self::fan_out) but every reply must be `Ok`.
    fn fan_out_ok(&self, requests: Vec<Outgoing>) -> Result<(), NetError> {
        for (_, reply) in self.fan_out(requests) {
            match reply? {
                Reply::Ok => {}
                other => return Err(NetError::BadReply(format!("expected Ok, got {other:?}"))),
            }
        }
        Ok(())
    }

    /// Creates `file` of `len` bytes, physically partitioned by `physical`
    /// (one element per I/O node), opening each subfile on its daemon.
    pub fn create_file(
        &mut self,
        file: u64,
        physical: Partition,
        len: u64,
    ) -> Result<(), NetError> {
        if physical.element_count() != self.nodes.len() {
            return Err(NetError::Usage(format!(
                "physical partition has {} elements but the session spans {} I/O nodes",
                physical.element_count(),
                self.nodes.len()
            )));
        }
        let mut requests = Vec::with_capacity(self.nodes.len());
        for s in 0..self.nodes.len() {
            let sub_len = physical.element_len(s, len)?;
            requests.push(Outgoing {
                node: s,
                request: Request::Open { file, subfile: s as u32, len: sub_len },
            });
        }
        self.fan_out_ok(requests)?;
        self.files.insert(file, FileState { physical, len, views: HashMap::new() });
        Ok(())
    }

    fn file(&self, file: u64) -> Result<&FileState, NetError> {
        self.files
            .get(&file)
            .ok_or_else(|| NetError::Usage(format!("file {file} was not created in this session")))
    }

    fn view(&self, file: u64, compute: u32) -> Result<(&FileState, &ViewState), NetError> {
        let st = self.file(file)?;
        let vs = st.views.get(&compute).ok_or_else(|| {
            NetError::Usage(format!("compute node {compute} has no view on file {file}"))
        })?;
        Ok((st, vs))
    }

    /// Sets compute node `compute`'s view on `file` to element `element` of
    /// `logical`. Compiles the access plan once, keeps the view-side
    /// projections locally, and ships each subfile-side projection (with
    /// the raw view pattern for auditing) to its I/O node.
    pub fn set_view(
        &mut self,
        compute: u32,
        file: u64,
        logical: &Partition,
        element: usize,
    ) -> Result<(), NetError> {
        let st = self.file(file)?;
        let plan = ViewPlan::compile(logical, element, &st.physical)?;
        let raw_view = RawPattern::from_partition(logical);
        let mut proj_view = Vec::with_capacity(plan.per_subfile.len());
        let mut perfect_match = Vec::with_capacity(plan.per_subfile.len());
        let mut requests = Vec::new();
        for (s, access) in plan.per_subfile.into_iter().enumerate() {
            if !access.is_empty() {
                let proj_set: Vec<RawFalls> =
                    access.proj_sub.set.families().iter().map(RawFalls::from_nested).collect();
                requests.push(Outgoing {
                    node: s,
                    request: Request::SetView {
                        file,
                        compute,
                        element: element as u32,
                        view: raw_view.clone(),
                        proj_set,
                        proj_period: access.proj_sub.period,
                    },
                });
            }
            perfect_match.push(access.perfect_match);
            proj_view.push(access.proj_view);
        }
        self.fan_out_ok(requests)?;
        let vs = ViewState { view: logical.clone(), element, proj_view, perfect_match };
        self.files.get_mut(&file).expect("file checked above").views.insert(compute, vs);
        Ok(())
    }

    /// Maps the view interval `[lo_v, hi_v]` onto subfile `s`, returning
    /// the subfile-linear extremities (the paper's `t_m` phase).
    fn map_extremities(
        st: &FileState,
        vs: &ViewState,
        s: usize,
        lo_v: u64,
        hi_v: u64,
    ) -> Result<(u64, u64), NetError> {
        if vs.perfect_match[s] {
            return Ok((lo_v, hi_v));
        }
        let mv = Mapper::new(&vs.view, vs.element);
        let ms = Mapper::new(&st.physical, s);
        let l_s = ms.map_next(mv.unmap(lo_v));
        let r_s = ms.map_prev(mv.unmap(hi_v)).ok_or_else(|| {
            NetError::Usage(format!("subfile {s} holds no data at or below view offset {hi_v}"))
        })?;
        Ok((l_s, r_s))
    }

    /// Writes `data` over the view interval `[lo_v, hi_v]` of `file` as
    /// compute node `compute`: per intersecting subfile, map the
    /// extremities, gather the view bytes, and send — all nodes
    /// concurrently. Returns the total bytes the daemons actually stored
    /// (less than `data.len()` when the interval runs past a subfile's
    /// physical end).
    pub fn write(
        &mut self,
        compute: u32,
        file: u64,
        lo_v: u64,
        hi_v: u64,
        data: &[u8],
    ) -> Result<u64, NetError> {
        if lo_v > hi_v || data.len() as u64 != hi_v - lo_v + 1 {
            return Err(NetError::Usage(format!(
                "data holds {} bytes but the interval [{lo_v}, {hi_v}] needs {}",
                data.len(),
                hi_v.saturating_sub(lo_v).saturating_add(1),
            )));
        }
        let (st, vs) = self.view(file, compute)?;
        let mut requests = Vec::new();
        for s in 0..self.nodes.len() {
            let proj_v = &vs.proj_view[s];
            if proj_v.is_empty() {
                continue;
            }
            let segs = proj_v.segments_between(lo_v, hi_v);
            if segs.is_empty() {
                continue;
            }
            let (l_s, r_s) = Self::map_extremities(st, vs, s, lo_v, hi_v)?;
            // Gather the non-contiguous view data into one message buffer
            // (the paper's t_g phase); a fully-covered interval is a plain
            // copy.
            let covered: usize = segs.iter().map(|g| g.len() as usize).sum();
            let mut payload = Vec::with_capacity(covered);
            for seg in &segs {
                let a = (seg.l() - lo_v) as usize;
                let b = (seg.r() - lo_v) as usize;
                payload.extend_from_slice(&data[a..=b]);
            }
            requests.push(Outgoing {
                node: s,
                request: Request::Write { file, compute, l_s, r_s, payload },
            });
        }
        let mut written = 0u64;
        for (node, reply) in self.fan_out(requests) {
            match reply? {
                Reply::WriteOk { written: w } => written += w,
                other => {
                    return Err(NetError::BadReply(format!(
                        "node {node}: expected WriteOk, got {other:?}"
                    )))
                }
            }
        }
        Ok(written)
    }

    /// Reads the view interval `[lo_v, hi_v]` of `file` as compute node
    /// `compute`. Bytes past a subfile's physical end read as zero (the
    /// partial-read complement of short writes).
    pub fn read(
        &mut self,
        compute: u32,
        file: u64,
        lo_v: u64,
        hi_v: u64,
    ) -> Result<Vec<u8>, NetError> {
        if lo_v > hi_v {
            return Err(NetError::Usage(format!("interval [{lo_v}, {hi_v}] is empty")));
        }
        let (st, vs) = self.view(file, compute)?;
        let mut requests = Vec::new();
        for s in 0..self.nodes.len() {
            let proj_v = &vs.proj_view[s];
            if proj_v.is_empty() {
                continue;
            }
            if proj_v.segments_between(lo_v, hi_v).is_empty() {
                continue;
            }
            let (l_s, r_s) = Self::map_extremities(st, vs, s, lo_v, hi_v)?;
            requests.push(Outgoing { node: s, request: Request::Read { file, compute, l_s, r_s } });
        }
        let mut buf = vec![0u8; (hi_v - lo_v + 1) as usize];
        for (node, reply) in self.fan_out(requests) {
            let payload = match reply? {
                Reply::Data { payload } => payload,
                other => {
                    return Err(NetError::BadReply(format!(
                        "node {node}: expected Data, got {other:?}"
                    )))
                }
            };
            // Scatter the node's fragment stream back into view positions.
            // A short payload (partial read at the subfile boundary) fills
            // only the leading fragments.
            let (_, vs) = self.view(file, compute)?;
            let mut pos = 0usize;
            for seg in vs.proj_view[node].segments_between(lo_v, hi_v) {
                let take = (seg.len() as usize).min(payload.len() - pos);
                if take == 0 {
                    break;
                }
                let a = (seg.l() - lo_v) as usize;
                buf[a..a + take].copy_from_slice(&payload[pos..pos + take]);
                pos += take;
            }
        }
        Ok(buf)
    }

    /// Fetches every subfile and reassembles the full file through the
    /// physical mapping functions (verification/diagnostics path).
    pub fn file_contents(&mut self, file: u64) -> Result<Vec<u8>, NetError> {
        let st = self.file(file)?;
        let len = st.len as usize;
        let physical = st.physical.clone();
        let requests = (0..self.nodes.len())
            .map(|s| Outgoing { node: s, request: Request::Fetch { file } })
            .collect();
        let mut out = vec![0u8; len];
        for (node, reply) in self.fan_out(requests) {
            let payload = match reply? {
                Reply::Data { payload } => payload,
                other => {
                    return Err(NetError::BadReply(format!(
                        "node {node}: expected Data, got {other:?}"
                    )))
                }
            };
            let m = Mapper::new(&physical, node);
            for (i, byte) in payload.iter().enumerate() {
                let pos = m.unmap(i as u64) as usize;
                if pos < len {
                    out[pos] = *byte;
                }
            }
        }
        Ok(out)
    }

    /// Fetches one subfile of `file` verbatim from its I/O node.
    pub fn subfile(&mut self, file: u64, s: usize) -> Result<Vec<u8>, NetError> {
        self.file(file)?;
        if s >= self.nodes.len() {
            return Err(NetError::Usage(format!(
                "subfile {s} out of range for {} I/O nodes",
                self.nodes.len()
            )));
        }
        match self.nodes[s].lock().expect("node lock").call(&Request::Fetch { file })? {
            Reply::Data { payload } => Ok(payload),
            other => Err(NetError::BadReply(format!("expected Data, got {other:?}"))),
        }
    }

    /// Forces every subfile of `file` to stable storage. Works on any file
    /// the daemons host, not just ones created by this session.
    pub fn flush(&mut self, file: u64) -> Result<(), NetError> {
        let requests = (0..self.nodes.len())
            .map(|s| Outgoing { node: s, request: Request::Flush { file } })
            .collect();
        self.fan_out_ok(requests)
    }

    /// Per-subfile statistics for `file`, one entry per I/O node. Works on
    /// any file the daemons host, not just ones created by this session.
    pub fn stat(&mut self, file: u64) -> Result<Vec<StatInfo>, NetError> {
        let requests = (0..self.nodes.len())
            .map(|s| Outgoing { node: s, request: Request::Stat { file } })
            .collect();
        let mut out = vec![StatInfo::default(); self.nodes.len()];
        for (node, reply) in self.fan_out(requests) {
            match reply? {
                Reply::Stat(s) => out[node] = s,
                other => {
                    return Err(NetError::BadReply(format!(
                        "node {node}: expected Stat, got {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Asks every daemon to shut down. Errors on unreachable daemons are
    /// reported but do not stop the sweep.
    pub fn shutdown_all(&mut self) -> Result<(), NetError> {
        let mut first_err = None;
        for node in &self.nodes {
            if let Err(e) = node.lock().expect("node lock").call(&Request::Shutdown) {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// Spawns `io_nodes` loopback daemons on OS-assigned TCP ports, all over
/// `backend`, returning their handles and client addresses (daemon order =
/// subfile order).
pub fn spawn_loopback(
    io_nodes: usize,
    backend: StorageBackend,
) -> std::io::Result<(Vec<DaemonHandle>, Vec<String>)> {
    let mut handles = Vec::with_capacity(io_nodes);
    let mut addrs = Vec::with_capacity(io_nodes);
    for _ in 0..io_nodes {
        let config = DaemonConfig { backend: backend.clone(), ..DaemonConfig::default() };
        let handle = serve("127.0.0.1:0", config)?;
        addrs.push(handle.addr().to_string());
        handles.push(handle);
    }
    Ok((handles, addrs))
}
