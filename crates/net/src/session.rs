//! The compute-node session: one parallel file over N I/O-node daemons.
//!
//! A [`Session`] plays the compute-node half of the paper's protocol
//! against real daemons. `set_view` compiles the `MAP_V∘MAP_S⁻¹` access
//! plan through the process-wide [`PlanEngine`] — exactly the planner the
//! simulated `Clusterfile` uses, with repeat views answered from the plan
//! cache — keeps `PROJ_V(V∩S)` locally and ships
//! `PROJ_S(V∩S)` (plus the full raw view pattern, for the daemon's audit)
//! to each intersecting I/O node. `write` maps the interval extremities,
//! gathers view bytes per node and fans the messages out concurrently;
//! `read` runs the reverse path.

//!
//! # Degraded operation
//!
//! Every mutating request carries this session's `(session_id, seq)` retry
//! stamp, so daemons deduplicate replays and retrying is always safe.
//! [`Session::probe`] pings every node and records its boot epoch; nodes
//! that fail the probe are marked dead and writes fail fast on them
//! (outcome [`SegmentOutcome::Unreachable`]) instead of paying the retry
//! schedule per access. [`Session::write_report`] narrates exactly what
//! happened per node — applied, deduplicated replay, re-established after
//! a daemon restart, or unreachable — while [`Session::write`] keeps the
//! original all-or-error contract on top of it.

use crate::backoff::Backoff;
use crate::client::NodeClient;
use crate::error::{ErrCode, NetError};
use crate::server::{serve, DaemonConfig, DaemonHandle};
use crate::wire::{Reply, Request, StatInfo};
use clusterfile::StorageBackend;
use parafile::engine::{CompiledView, PlanEngine};
use parafile::mapping::Mapper;
use parafile::model::Partition;
use parafile_audit::{RawFalls, RawPattern};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::SystemTime;

/// Locks a node client, recovering from poisoning (a panicked worker or
/// caller must not wedge the whole session).
fn lock(m: &Mutex<NodeClient>) -> MutexGuard<'_, NodeClient> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Depth of each node worker's request queue. Deep enough to pipeline a
/// burst of batched writes per node, bounded so a stalled daemon
/// back-pressures the submitter instead of buffering without limit.
const WORKER_QUEUE_DEPTH: usize = 16;

/// Where a worker's reply lands.
type ReplySlot = Receiver<Result<Reply, NetError>>;

/// One queued request and the slot its reply goes to. The reply channel
/// has capacity 1 and receives exactly one message, so a worker never
/// blocks handing a reply back — even if the collector already gave up.
struct Job {
    request: Request,
    reply: SyncSender<Result<Reply, NetError>>,
}

/// A persistent per-node dispatcher: one OS thread owning the queue end
/// for its node, serializing requests onto the shared [`NodeClient`] (and
/// so reusing its warm connection and backoff state across calls).
struct Worker {
    /// Bounded job queue; dropping it is the shutdown signal.
    tx: Option<SyncSender<Job>>,
    /// The worker thread, joined on drop.
    handle: Option<JoinHandle<()>>,
    /// Test hook: arms the worker to panic before its next job, to
    /// exercise the lost-worker degradation path.
    #[cfg_attr(not(test), allow(dead_code))]
    panic_next: Arc<AtomicBool>,
}

impl Drop for Worker {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            // A panicked worker joins with an error that was already
            // accounted for (its jobs surfaced as lost).
            let _ = handle.join();
        }
    }
}

/// The error surfaced when a worker thread died under a request: an
/// `Io`-class failure, so write reporting degrades it to
/// [`SegmentOutcome::Unreachable`] exactly like a dead connection.
fn worker_lost(node: usize) -> NetError {
    NetError::Io(std::io::Error::other(format!("node {node} worker thread panicked")))
}

/// Starts the persistent dispatch thread for `node`.
fn spawn_worker(node: usize, client: Arc<Mutex<NodeClient>>) -> Worker {
    let panic_next = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&panic_next);
    let (tx, rx) = mpsc::sync_channel::<Job>(WORKER_QUEUE_DEPTH);
    let handle = std::thread::Builder::new().name(format!("pf-node-{node}")).spawn(move || {
        for job in rx {
            assert!(!flag.swap(false, Ordering::SeqCst), "injected worker panic");
            let result = lock(&client).call(&job.request);
            // The collector may have abandoned this job (a fatal error
            // on another node): a closed reply slot is not our problem.
            let _ = job.reply.send(result);
        }
    });
    match handle {
        Ok(handle) => Worker { tx: Some(tx), handle: Some(handle), panic_next },
        // Thread exhaustion: a queue-less worker makes every submit
        // surface `worker_lost`, degrading the node to Unreachable
        // instead of panicking the session.
        Err(_) => Worker { tx: None, handle: None, panic_next },
    }
}

struct ViewState {
    view: Partition,
    element: usize,
    /// The engine-compiled access plan (view-side replay tables plus the
    /// symbolic projections), shared with the process-wide plan cache.
    plan: Arc<CompiledView>,
}

struct FileState {
    physical: Partition,
    len: u64,
    views: HashMap<u32, ViewState>,
}

/// What a [`Session::probe`] learned about one I/O node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Never probed.
    Unknown,
    /// Answered the last probe; `epoch` is its boot stamp (0 for a v1
    /// daemon that does not speak `Ping`). A changed epoch between probes
    /// means the daemon restarted and lost its session-visible state.
    Alive {
        /// The daemon's boot epoch.
        epoch: u64,
    },
    /// Failed the last probe (or a write); writes fail fast until a later
    /// probe revives it.
    Dead,
}

/// Per-node outcome of one redistribution write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentOutcome {
    /// The daemon applied the segments fresh.
    Applied {
        /// Bytes the daemon stored.
        written: u64,
    },
    /// The daemon had already applied this stamped write and answered from
    /// its dedup window — the retry cost nothing.
    Replayed {
        /// Bytes the original application stored.
        written: u64,
    },
    /// Applied after this session re-opened the file and re-shipped the
    /// view (the daemon restarted and had forgotten both).
    Recovered {
        /// Bytes the daemon stored.
        written: u64,
    },
    /// The node stayed unreachable through retries and re-establishment;
    /// its segments were not applied.
    Unreachable,
}

impl SegmentOutcome {
    /// Bytes this node acknowledged (0 when unreachable).
    #[must_use]
    pub fn written(&self) -> u64 {
        match *self {
            SegmentOutcome::Applied { written }
            | SegmentOutcome::Replayed { written }
            | SegmentOutcome::Recovered { written } => written,
            SegmentOutcome::Unreachable => 0,
        }
    }
}

/// What happened, node by node, during one redistribution write.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RedistReport {
    /// Total bytes acknowledged across all reachable nodes.
    pub written: u64,
    /// `(node index, outcome)` for every node the interval intersects.
    pub outcomes: Vec<(usize, SegmentOutcome)>,
}

impl RedistReport {
    /// Whether every intersecting node acknowledged its segments.
    #[must_use]
    pub fn fully_applied(&self) -> bool {
        self.outcomes.iter().all(|(_, o)| !matches!(o, SegmentOutcome::Unreachable))
    }

    /// Node indices whose segments were not applied.
    #[must_use]
    pub fn unreachable(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .filter(|(_, o)| matches!(o, SegmentOutcome::Unreachable))
            .map(|&(n, _)| n)
            .collect()
    }
}

/// A compute node's connection to a set of I/O-node daemons, one subfile
/// per daemon (daemon order = subfile order).
///
/// Dispatch is pipelined: every node has a persistent worker thread
/// owning its end of a bounded request queue, so fan-outs reuse warm
/// connections and overlap encode/send/recv across nodes without
/// spawning threads per call. Recovery paths (`reopen`, `reestablish`,
/// …) lock the shared per-node client directly between fan-outs.
pub struct Session {
    nodes: Vec<Arc<Mutex<NodeClient>>>,
    /// Persistent per-node dispatch workers, index-aligned with `nodes`.
    workers: Vec<Worker>,
    files: HashMap<u64, FileState>,
    /// This session's retry-stamp namespace (nonzero; 0 is the unstamped
    /// wire sentinel).
    session_id: u64,
    /// Next retry sequence number.
    next_seq: AtomicU64,
    /// Last known health per node.
    health: Vec<NodeHealth>,
}

/// A per-node request to fan out, with its target node index.
struct Outgoing {
    node: usize,
    request: Request,
}

/// One logical write of a [`Session::write_batch`]: a view interval and
/// its bytes.
#[derive(Debug, Clone, Copy)]
pub struct BatchWrite<'a> {
    /// First view offset of the interval.
    pub lo_v: u64,
    /// Last view offset of the interval.
    pub hi_v: u64,
    /// The interval's bytes (`hi_v - lo_v + 1` of them).
    pub data: &'a [u8],
}

impl Session {
    /// Connects lazily to one daemon per address (`host:port` or
    /// `unix:/path`); address order defines subfile order.
    #[must_use]
    pub fn connect(addrs: &[String]) -> Self {
        // A clock-and-pid stamp is unique enough across real client
        // processes; collisions only widen dedup to a twin session.
        let session_id = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64)
            ^ (u64::from(std::process::id()) << 32);
        let nodes: Vec<Arc<Mutex<NodeClient>>> =
            addrs.iter().map(|a| Arc::new(Mutex::new(NodeClient::new(a)))).collect();
        let workers = nodes
            .iter()
            .enumerate()
            .map(|(s, client)| spawn_worker(s, Arc::clone(client)))
            .collect();
        Self {
            nodes,
            workers,
            files: HashMap::new(),
            session_id: session_id.max(1),
            next_seq: AtomicU64::new(1),
            health: vec![NodeHealth::Unknown; addrs.len()],
        }
    }

    /// Number of I/O nodes this session spans.
    #[must_use]
    pub fn io_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Replaces a dead worker with a fresh one. The shared client — and so
    /// the warm connection and backoff state — carries over; assigning over
    /// the old [`Worker`] joins its (already finished) thread.
    fn respawn(&mut self, node: usize) {
        self.workers[node] = spawn_worker(node, Arc::clone(&self.nodes[node]));
    }

    /// Enqueues one request on `node`'s worker, respawning it once if the
    /// queue is closed (an earlier job panicked the thread). Returns the
    /// slot the reply will arrive on; blocks only when the node's bounded
    /// queue is full.
    fn submit(&mut self, node: usize, request: Request) -> Result<ReplySlot, NetError> {
        let (rtx, rrx) = mpsc::sync_channel(1);
        let mut job = Job { request, reply: rtx };
        for respawned in [false, true] {
            if respawned {
                self.respawn(node);
            }
            let Some(tx) = self.workers[node].tx.as_ref() else { continue };
            match tx.send(job) {
                Ok(()) => return Ok(rrx),
                Err(mpsc::SendError(j)) => job = j,
            }
        }
        Err(worker_lost(node))
    }

    /// Collects one submitted reply. A worker that died under the job (its
    /// reply slot closed without a message) is respawned and surfaced as a
    /// lost-worker transport error.
    fn collect(
        &mut self,
        node: usize,
        slot: Result<ReplySlot, NetError>,
    ) -> Result<Reply, NetError> {
        match slot {
            Ok(rx) => match rx.recv() {
                Ok(reply) => reply,
                Err(_) => {
                    self.respawn(node);
                    Err(worker_lost(node))
                }
            },
            Err(e) => Err(e),
        }
    }

    /// Fans `requests` out to their nodes' workers concurrently and
    /// returns the replies in the same order.
    fn fan_out(&mut self, requests: Vec<Outgoing>) -> Vec<(usize, Result<Reply, NetError>)> {
        if requests.len() == 1 {
            // Skip the queue round trip for the single-target case.
            return match requests.into_iter().next() {
                Some(Outgoing { node, request }) => {
                    let reply = lock(&self.nodes[node]).call(&request);
                    vec![(node, reply)]
                }
                None => Vec::new(),
            };
        }
        let submitted: Vec<(usize, Result<ReplySlot, NetError>)> = requests
            .into_iter()
            .map(|Outgoing { node, request }| {
                let slot = self.submit(node, request);
                (node, slot)
            })
            .collect();
        submitted
            .into_iter()
            .map(|(node, slot)| {
                let reply = self.collect(node, slot);
                (node, reply)
            })
            .collect()
    }

    /// Like [`fan_out`](Self::fan_out) but every reply must be `Ok`.
    fn fan_out_ok(&mut self, requests: Vec<Outgoing>) -> Result<(), NetError> {
        for (_, reply) in self.fan_out(requests) {
            match reply? {
                Reply::Ok => {}
                other => return Err(NetError::BadReply(format!("expected Ok, got {other:?}"))),
            }
        }
        Ok(())
    }

    /// Creates `file` of `len` bytes, physically partitioned by `physical`
    /// (one element per I/O node), opening each subfile on its daemon.
    pub fn create_file(
        &mut self,
        file: u64,
        physical: Partition,
        len: u64,
    ) -> Result<(), NetError> {
        if physical.element_count() != self.nodes.len() {
            return Err(NetError::Usage(format!(
                "physical partition has {} elements but the session spans {} I/O nodes",
                physical.element_count(),
                self.nodes.len()
            )));
        }
        let mut requests = Vec::with_capacity(self.nodes.len());
        for s in 0..self.nodes.len() {
            let sub_len = physical.element_len(s, len)?;
            requests.push(Outgoing {
                node: s,
                request: Request::Open { file, subfile: s as u32, len: sub_len },
            });
        }
        self.fan_out_ok(requests)?;
        self.files.insert(file, FileState { physical, len, views: HashMap::new() });
        Ok(())
    }

    fn file(&self, file: u64) -> Result<&FileState, NetError> {
        self.files
            .get(&file)
            .ok_or_else(|| NetError::Usage(format!("file {file} was not created in this session")))
    }

    fn view(&self, file: u64, compute: u32) -> Result<(&FileState, &ViewState), NetError> {
        let st = self.file(file)?;
        let vs = st.views.get(&compute).ok_or_else(|| {
            NetError::Usage(format!("compute node {compute} has no view on file {file}"))
        })?;
        Ok((st, vs))
    }

    /// Sets compute node `compute`'s view on `file` to element `element` of
    /// `logical`. Compiles the access plan once, keeps the view-side
    /// projections locally, and ships each subfile-side projection (with
    /// the raw view pattern for auditing) to its I/O node.
    pub fn set_view(
        &mut self,
        compute: u32,
        file: u64,
        logical: &Partition,
        element: usize,
    ) -> Result<(), NetError> {
        let st = self.file(file)?;
        let plan = PlanEngine::global().compile_view(logical, element, &st.physical)?;
        let raw_view = RawPattern::from_partition(logical);
        let mut requests = Vec::new();
        for (s, access) in plan.per_subfile().iter().enumerate() {
            if !access.is_empty() {
                let proj_set: Vec<RawFalls> =
                    access.proj_sub.set.families().iter().map(RawFalls::from_nested).collect();
                requests.push(Outgoing {
                    node: s,
                    request: Request::SetView {
                        file,
                        compute,
                        element: element as u32,
                        view: raw_view.clone(),
                        proj_set,
                        proj_period: access.proj_sub.period,
                    },
                });
            }
        }
        let retry: HashMap<usize, Request> =
            requests.iter().map(|o| (o.node, o.request.clone())).collect();
        for (node, reply) in self.fan_out(requests) {
            match reply {
                Ok(Reply::Ok) => {}
                Ok(other) => return Err(NetError::BadReply(format!("expected Ok, got {other:?}"))),
                Err(NetError::Protocol(e)) if matches!(e.code, ErrCode::UnknownFile) => {
                    // The daemon restarted since `create_file` and forgot
                    // the subfile: re-open it and retry the view once.
                    self.reopen(node, file)?;
                    lock(&self.nodes[node]).expect_ok(&retry[&node])?;
                }
                Err(e) => return Err(e),
            }
        }
        let vs = ViewState { view: logical.clone(), element, plan };
        let Some(fs) = self.files.get_mut(&file) else {
            return Err(NetError::Usage(format!("file {file} was not created in this session")));
        };
        fs.views.insert(compute, vs);
        Ok(())
    }

    /// Maps the view interval `[lo_v, hi_v]` onto subfile `s`, returning
    /// the subfile-linear extremities (the paper's `t_m` phase).
    fn map_extremities(
        st: &FileState,
        vs: &ViewState,
        s: usize,
        lo_v: u64,
        hi_v: u64,
    ) -> Result<(u64, u64), NetError> {
        if vs.plan.access(s).perfect_match {
            return Ok((lo_v, hi_v));
        }
        let mv = Mapper::new(&vs.view, vs.element);
        let ms = Mapper::new(&st.physical, s);
        let l_s = ms.map_next(mv.unmap(lo_v));
        let r_s = ms.map_prev(mv.unmap(hi_v)).ok_or_else(|| {
            NetError::Usage(format!("subfile {s} holds no data at or below view offset {hi_v}"))
        })?;
        Ok((l_s, r_s))
    }

    /// Writes `data` over the view interval `[lo_v, hi_v]` of `file` as
    /// compute node `compute`: per intersecting subfile, map the
    /// extremities, gather the view bytes, and send — all nodes
    /// concurrently. Returns the total bytes the daemons actually stored
    /// (less than `data.len()` when the interval runs past a subfile's
    /// physical end). Fails if any intersecting node stays unreachable;
    /// use [`write_report`](Self::write_report) to keep partial progress.
    pub fn write(
        &mut self,
        compute: u32,
        file: u64,
        lo_v: u64,
        hi_v: u64,
        data: &[u8],
    ) -> Result<u64, NetError> {
        let report = self.write_report(compute, file, lo_v, hi_v, data)?;
        let down = report.unreachable();
        if down.is_empty() {
            Ok(report.written)
        } else {
            Err(NetError::Io(std::io::Error::other(format!(
                "I/O node(s) {down:?} unreachable; their segments were not applied"
            ))))
        }
    }

    /// Like [`write`](Self::write), but degrades instead of failing: dead
    /// or newly-unreachable nodes are reported per segment group while the
    /// healthy nodes' writes proceed. A daemon that restarted (and so
    /// forgot the file and view) is transparently re-established from this
    /// session's cached state and the write retried once. Only usage
    /// errors and non-recoverable protocol errors abort the whole call.
    pub fn write_report(
        &mut self,
        compute: u32,
        file: u64,
        lo_v: u64,
        hi_v: u64,
        data: &[u8],
    ) -> Result<RedistReport, NetError> {
        let mut reports = self.write_batch(compute, file, &[BatchWrite { lo_v, hi_v, data }])?;
        reports
            .pop()
            .ok_or_else(|| NetError::BadReply("write batch returned no report".to_string()))
    }

    /// Pipelines several logical writes through the per-node worker
    /// queues: every op's per-node messages are enqueued back to back
    /// before any reply is collected, so each node's worker streams the
    /// whole batch over its warm connection without a per-op barrier.
    /// Returns one [`RedistReport`] per op, in op order, with the same
    /// degradation semantics as [`write_report`](Self::write_report).
    pub fn write_batch(
        &mut self,
        compute: u32,
        file: u64,
        ops: &[BatchWrite<'_>],
    ) -> Result<Vec<RedistReport>, NetError> {
        // Validate and build every op's per-node requests up front (the
        // paper's t_m and t_g phases), so the submit phase below is pure
        // dispatch.
        let mut built = Vec::with_capacity(ops.len());
        for op in ops {
            if op.lo_v > op.hi_v || op.data.len() as u64 != op.hi_v - op.lo_v + 1 {
                return Err(NetError::Usage(format!(
                    "data holds {} bytes but the interval [{}, {}] needs {}",
                    op.data.len(),
                    op.lo_v,
                    op.hi_v,
                    op.hi_v.saturating_sub(op.lo_v).saturating_add(1),
                )));
            }
            built.push(self.build_write(compute, file, op.lo_v, op.hi_v, op.data)?);
        }
        // Dispatch phase: enqueue everything before collecting anything.
        let mut pending = Vec::with_capacity(built.len());
        for (report, requests) in built {
            let waits: Vec<(usize, Result<ReplySlot, NetError>)> = requests
                .into_iter()
                .map(|Outgoing { node, request }| {
                    let slot = self.submit(node, request);
                    (node, slot)
                })
                .collect();
            pending.push((report, waits));
        }
        // Collect phase, in op order (workers answer each node's jobs in
        // FIFO order, so op k's reply on a node precedes op k+1's).
        let mut out = Vec::with_capacity(pending.len());
        for ((mut report, waits), op) in pending.into_iter().zip(ops) {
            for (node, slot) in waits {
                let reply = self.collect(node, slot);
                let outcome =
                    self.write_outcome(node, compute, file, op.lo_v, op.hi_v, op.data, reply)?;
                report.written += outcome.written();
                report.outcomes.push((node, outcome));
            }
            report.outcomes.sort_unstable_by_key(|&(n, _)| n);
            out.push(report);
        }
        Ok(out)
    }

    /// Builds one logical write's per-node messages: map the extremities,
    /// gather the view bytes, stamp the dedup sequence. Dead nodes are
    /// pre-reported unreachable and get no message.
    fn build_write(
        &self,
        compute: u32,
        file: u64,
        lo_v: u64,
        hi_v: u64,
        data: &[u8],
    ) -> Result<(RedistReport, Vec<Outgoing>), NetError> {
        let session = self.session_id;
        let (st, vs) = self.view(file, compute)?;
        let mut requests = Vec::new();
        let mut report = RedistReport::default();
        for s in 0..self.nodes.len() {
            let replay = vs.plan.replay(s);
            if replay.is_empty() {
                continue;
            }
            let covered = replay.bytes_between(lo_v, hi_v);
            if covered == 0 {
                continue;
            }
            if self.health[s] == NodeHealth::Dead {
                // Fail fast: a node that failed its last probe gets no
                // request (and no retry schedule) until a probe revives it.
                report.outcomes.push((s, SegmentOutcome::Unreachable));
                continue;
            }
            let (l_s, r_s) = Self::map_extremities(st, vs, s, lo_v, hi_v)?;
            // Gather the non-contiguous view data into one message buffer
            // (the paper's t_g phase); a fully-covered interval is a plain
            // copy.
            let mut payload = Vec::with_capacity(covered as usize);
            replay.for_each_between(lo_v, hi_v, |seg| {
                let a = (seg.l() - lo_v) as usize;
                let b = (seg.r() - lo_v) as usize;
                payload.extend_from_slice(&data[a..=b]);
            });
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            requests.push(Outgoing {
                node: s,
                request: Request::Write { file, compute, l_s, r_s, session, seq, payload },
            });
        }
        Ok((report, requests))
    }

    /// Maps one node's write reply to its segment outcome, driving restart
    /// recovery and dead-node bookkeeping on the way.
    #[allow(clippy::too_many_arguments)]
    fn write_outcome(
        &mut self,
        node: usize,
        compute: u32,
        file: u64,
        lo_v: u64,
        hi_v: u64,
        data: &[u8],
        reply: Result<Reply, NetError>,
    ) -> Result<SegmentOutcome, NetError> {
        Ok(match reply {
            Ok(Reply::WriteOk { written, replayed: false }) => SegmentOutcome::Applied { written },
            Ok(Reply::WriteOk { written, replayed: true }) => SegmentOutcome::Replayed { written },
            Ok(other) => {
                return Err(NetError::BadReply(format!(
                    "node {node}: expected WriteOk, got {other:?}"
                )))
            }
            Err(NetError::Protocol(e))
                if matches!(e.code, ErrCode::UnknownFile | ErrCode::NoView) =>
            {
                // The daemon restarted and forgot this session's state:
                // re-open the subfile, re-ship the view, retry once.
                match self.recover_write(node, compute, file, lo_v, hi_v, data) {
                    Ok(written) => SegmentOutcome::Recovered { written },
                    Err(NetError::Io(_) | NetError::IdMismatch { .. }) => {
                        self.health[node] = NodeHealth::Dead;
                        SegmentOutcome::Unreachable
                    }
                    Err(other) => return Err(other),
                }
            }
            Err(NetError::Io(_) | NetError::IdMismatch { .. }) => {
                // The node stayed down through the client's whole retry
                // schedule (or its worker died): mark it dead so later
                // writes fail fast until a probe revives it.
                self.health[node] = NodeHealth::Dead;
                SegmentOutcome::Unreachable
            }
            Err(other) => return Err(other),
        })
    }

    /// Re-`Open`s `file`'s subfile on node `node` with the session's cached
    /// geometry — the first half of restart recovery. On a restarted daemon
    /// the open also replays its journal into any surviving bytes.
    fn reopen(&self, node: usize, file: u64) -> Result<(), NetError> {
        let st = self.file(file)?;
        let sub_len = st.physical.element_len(node, st.len)?;
        lock(&self.nodes[node]).expect_ok(&Request::Open {
            file,
            subfile: node as u32,
            len: sub_len,
        })
    }

    /// Re-establishes node `node` after a daemon restart: re-`Open` the
    /// subfile (which replays the daemon's journal into any surviving
    /// bytes) and re-ship compute `compute`'s view, all from this
    /// session's cached state.
    fn reestablish(&self, node: usize, compute: u32, file: u64) -> Result<(), NetError> {
        self.reopen(node, file)?;
        let (st, vs) = self.view(file, compute)?;
        // Cache hit in the common case: the same (view, physical) pair was
        // compiled when the view was first set.
        let plan = PlanEngine::global().compile_view(&vs.view, vs.element, &st.physical)?;
        let access = plan.access(node);
        let mut client = lock(&self.nodes[node]);
        if !access.is_empty() {
            let proj_set: Vec<RawFalls> =
                access.proj_sub.set.families().iter().map(RawFalls::from_nested).collect();
            client.expect_ok(&Request::SetView {
                file,
                compute,
                element: vs.element as u32,
                view: RawPattern::from_partition(&vs.view),
                proj_set,
                proj_period: access.proj_sub.period,
            })?;
        }
        Ok(())
    }

    /// [`reestablish`](Self::reestablish), then retry the write for that
    /// node once. The retry carries a fresh stamp: the daemon's dedup
    /// window (repopulated from its journal) decides whether the original
    /// write already landed.
    fn recover_write(
        &mut self,
        node: usize,
        compute: u32,
        file: u64,
        lo_v: u64,
        hi_v: u64,
        data: &[u8],
    ) -> Result<u64, NetError> {
        self.reestablish(node, compute, file)?;
        let session = self.session_id;
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let (st, vs) = self.view(file, compute)?;
        let (l_s, r_s) = Self::map_extremities(st, vs, node, lo_v, hi_v)?;
        let replay = vs.plan.replay(node);
        let mut payload = Vec::with_capacity(replay.bytes_between(lo_v, hi_v) as usize);
        replay.for_each_between(lo_v, hi_v, |seg| {
            let a = (seg.l() - lo_v) as usize;
            let b = (seg.r() - lo_v) as usize;
            payload.extend_from_slice(&data[a..=b]);
        });
        let mut client = lock(&self.nodes[node]);
        match client.call(&Request::Write { file, compute, l_s, r_s, session, seq, payload })? {
            Reply::WriteOk { written, .. } => Ok(written),
            other => Err(NetError::BadReply(format!("expected WriteOk, got {other:?}"))),
        }
    }

    /// Pings every node: records and returns each node's health. An
    /// unreachable node is marked [`NodeHealth::Dead`] (writes fail fast on
    /// it); a reachable one is revived, with its boot epoch captured so a
    /// caller comparing successive probes can detect restarts.
    pub fn probe(&mut self) -> Vec<NodeHealth> {
        let replies: Vec<(usize, Result<Reply, NetError>)> = self.fan_out(
            (0..self.nodes.len()).map(|s| Outgoing { node: s, request: Request::Ping }).collect(),
        );
        for (node, reply) in replies {
            self.health[node] = match reply {
                Ok(Reply::Pong { epoch, .. }) => NodeHealth::Alive { epoch },
                // A daemon that answers at all is alive, even a v1 one that
                // rejects Ping as malformed.
                Ok(_) | Err(NetError::Protocol(_)) => NodeHealth::Alive { epoch: 0 },
                Err(_) => NodeHealth::Dead,
            };
        }
        self.health.clone()
    }

    /// The last known health of every node (updated by probes and writes).
    #[must_use]
    pub fn health(&self) -> &[NodeHealth] {
        &self.health
    }

    /// This session's retry-stamp namespace.
    #[must_use]
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Reads the view interval `[lo_v, hi_v]` of `file` as compute node
    /// `compute`. Bytes past a subfile's physical end read as zero (the
    /// partial-read complement of short writes).
    pub fn read(
        &mut self,
        compute: u32,
        file: u64,
        lo_v: u64,
        hi_v: u64,
    ) -> Result<Vec<u8>, NetError> {
        if lo_v > hi_v {
            return Err(NetError::Usage(format!("interval [{lo_v}, {hi_v}] is empty")));
        }
        let (st, vs) = self.view(file, compute)?;
        let mut requests = Vec::new();
        for s in 0..self.nodes.len() {
            let replay = vs.plan.replay(s);
            if replay.is_empty() || replay.bytes_between(lo_v, hi_v) == 0 {
                continue;
            }
            let (l_s, r_s) = Self::map_extremities(st, vs, s, lo_v, hi_v)?;
            requests.push(Outgoing { node: s, request: Request::Read { file, compute, l_s, r_s } });
        }
        let mut buf = vec![0u8; (hi_v - lo_v + 1) as usize];
        for (node, reply) in self.fan_out(requests) {
            let reply = match reply {
                Err(NetError::Protocol(e))
                    if matches!(e.code, ErrCode::UnknownFile | ErrCode::NoView) =>
                {
                    // The daemon restarted between `set_view` and this read:
                    // re-establish the file and view from cached state (which
                    // also replays the daemon's journal) and retry once.
                    self.reestablish(node, compute, file)?;
                    let (st, vs) = self.view(file, compute)?;
                    let (l_s, r_s) = Self::map_extremities(st, vs, node, lo_v, hi_v)?;
                    lock(&self.nodes[node]).call(&Request::Read { file, compute, l_s, r_s })?
                }
                other => other?,
            };
            let payload = match reply {
                Reply::Data { payload } => payload,
                other => {
                    return Err(NetError::BadReply(format!(
                        "node {node}: expected Data, got {other:?}"
                    )))
                }
            };
            // Scatter the node's fragment stream back into view positions.
            // A short payload (partial read at the subfile boundary) fills
            // only the leading fragments.
            let (_, vs) = self.view(file, compute)?;
            let mut pos = 0usize;
            vs.plan.replay(node).for_each_between(lo_v, hi_v, |seg| {
                let take = (seg.len() as usize).min(payload.len() - pos);
                if take == 0 {
                    return;
                }
                let a = (seg.l() - lo_v) as usize;
                buf[a..a + take].copy_from_slice(&payload[pos..pos + take]);
                pos += take;
            });
        }
        Ok(buf)
    }

    /// Fetches every subfile and reassembles the full file through the
    /// physical mapping functions (verification/diagnostics path).
    pub fn file_contents(&mut self, file: u64) -> Result<Vec<u8>, NetError> {
        let st = self.file(file)?;
        let len = st.len as usize;
        let physical = st.physical.clone();
        let requests = (0..self.nodes.len())
            .map(|s| Outgoing { node: s, request: Request::Fetch { file } })
            .collect();
        let mut out = vec![0u8; len];
        for (node, reply) in self.fan_out(requests) {
            let reply = match reply {
                Err(NetError::Protocol(e)) if matches!(e.code, ErrCode::UnknownFile) => {
                    // A restarted daemon forgot the subfile: re-opening it
                    // replays the journal over the surviving bytes.
                    self.reopen(node, file)?;
                    lock(&self.nodes[node]).call(&Request::Fetch { file })?
                }
                other => other?,
            };
            let payload = match reply {
                Reply::Data { payload } => payload,
                other => {
                    return Err(NetError::BadReply(format!(
                        "node {node}: expected Data, got {other:?}"
                    )))
                }
            };
            let m = Mapper::new(&physical, node);
            for (i, byte) in payload.iter().enumerate() {
                let pos = m.unmap(i as u64) as usize;
                if pos < len {
                    out[pos] = *byte;
                }
            }
        }
        Ok(out)
    }

    /// Fetches one subfile of `file` verbatim from its I/O node.
    pub fn subfile(&mut self, file: u64, s: usize) -> Result<Vec<u8>, NetError> {
        self.file(file)?;
        if s >= self.nodes.len() {
            return Err(NetError::Usage(format!(
                "subfile {s} out of range for {} I/O nodes",
                self.nodes.len()
            )));
        }
        let reply = match lock(&self.nodes[s]).call(&Request::Fetch { file }) {
            Err(NetError::Protocol(e)) if matches!(e.code, ErrCode::UnknownFile) => {
                self.reopen(s, file)?;
                lock(&self.nodes[s]).call(&Request::Fetch { file })?
            }
            other => other?,
        };
        match reply {
            Reply::Data { payload } => Ok(payload),
            other => Err(NetError::BadReply(format!("expected Data, got {other:?}"))),
        }
    }

    /// Forces every subfile of `file` to stable storage. Works on any file
    /// the daemons host, not just ones created by this session. A failed
    /// flush leaves the daemon's journal intact, so flushing is retry-safe:
    /// transient storage failures ([`ErrCode::Internal`]) are absorbed with
    /// a few immediate per-node retries before surfacing.
    pub fn flush(&mut self, file: u64) -> Result<(), NetError> {
        let requests = (0..self.nodes.len())
            .map(|s| Outgoing { node: s, request: Request::Flush { file } })
            .collect();
        for (node, first) in self.fan_out(requests) {
            let mut reply = first;
            let mut tries = 0;
            // The shared backoff schedule, seeded per (session, node) so
            // concurrent sessions flushing the same daemons desynchronize.
            let mut backoff = Backoff::new(
                std::time::Duration::from_millis(5),
                std::time::Duration::from_millis(20),
                self.session_id ^ node as u64,
            );
            loop {
                match reply {
                    Ok(Reply::Ok) => break,
                    Ok(other) => {
                        return Err(NetError::BadReply(format!(
                            "node {node}: expected Ok, got {other:?}"
                        )))
                    }
                    Err(NetError::Protocol(ref e))
                        if matches!(e.code, ErrCode::Internal) && tries < 3 =>
                    {
                        tries += 1;
                        backoff.sleep();
                        reply = lock(&self.nodes[node]).call(&Request::Flush { file });
                    }
                    Err(NetError::Protocol(ref e))
                        if matches!(e.code, ErrCode::UnknownFile)
                            && self.files.contains_key(&file)
                            && tries < 3 =>
                    {
                        // A restarted daemon forgot the subfile; re-opening
                        // it replays the journal, which the flush then
                        // checkpoints.
                        tries += 1;
                        self.reopen(node, file)?;
                        reply = lock(&self.nodes[node]).call(&Request::Flush { file });
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// Per-subfile statistics for `file`, one entry per I/O node. Works on
    /// any file the daemons host, not just ones created by this session.
    pub fn stat(&mut self, file: u64) -> Result<Vec<StatInfo>, NetError> {
        let requests = (0..self.nodes.len())
            .map(|s| Outgoing { node: s, request: Request::Stat { file } })
            .collect();
        let mut out = vec![StatInfo::default(); self.nodes.len()];
        for (node, reply) in self.fan_out(requests) {
            let reply = match reply {
                Err(NetError::Protocol(e))
                    if matches!(e.code, ErrCode::UnknownFile) && self.files.contains_key(&file) =>
                {
                    self.reopen(node, file)?;
                    lock(&self.nodes[node]).call(&Request::Stat { file })?
                }
                other => other?,
            };
            match reply {
                Reply::Stat(s) => out[node] = s,
                other => {
                    return Err(NetError::BadReply(format!(
                        "node {node}: expected Stat, got {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Asks every daemon to shut down. Errors on unreachable daemons are
    /// reported but do not stop the sweep.
    pub fn shutdown_all(&mut self) -> Result<(), NetError> {
        let mut first_err = None;
        for node in &self.nodes {
            if let Err(e) = lock(node).call(&Request::Shutdown) {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// Spawns `io_nodes` loopback daemons on OS-assigned TCP ports, all over
/// `backend`, returning their handles and client addresses (daemon order =
/// subfile order).
pub fn spawn_loopback(
    io_nodes: usize,
    backend: StorageBackend,
) -> std::io::Result<(Vec<DaemonHandle>, Vec<String>)> {
    let mut handles = Vec::with_capacity(io_nodes);
    let mut addrs = Vec::with_capacity(io_nodes);
    for _ in 0..io_nodes {
        let config = DaemonConfig { backend: backend.clone(), ..DaemonConfig::default() };
        let handle = serve("127.0.0.1:0", config)?;
        addrs.push(handle.addr().to_string());
        handles.push(handle);
    }
    Ok((handles, addrs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arraydist::matrix::MatrixLayout;

    /// 8×8 matrix, column-block physical over 2 nodes, row-block view —
    /// element 0's full view interval `[0, 31]` intersects both subfiles.
    fn two_node_session() -> (Vec<DaemonHandle>, Session) {
        let physical = MatrixLayout::ColumnBlocks.partition(8, 8, 1, 2);
        let logical = MatrixLayout::RowBlocks.partition(8, 8, 1, 2);
        let (handles, addrs) =
            spawn_loopback(2, StorageBackend::Memory).expect("spawn loopback daemons");
        let mut session = Session::connect(&addrs);
        session.create_file(1, physical, 64).expect("create file");
        session.set_view(0, 1, &logical, 0).expect("set view");
        (handles, session)
    }

    #[test]
    fn poisoned_node_mutex_does_not_wedge_the_session() {
        let (mut handles, mut session) = two_node_session();
        session.write(0, 1, 0, 31, &[0x11; 32]).expect("write before poisoning");
        // Poison node 0's client mutex the way a panicking caller would.
        let client = Arc::clone(&session.nodes[0]);
        let _ = std::thread::spawn(move || {
            let _guard = client.lock().unwrap();
            panic!("poison the client mutex");
        })
        .join();
        assert!(session.nodes[0].is_poisoned(), "the mutex must actually be poisoned");
        session.write(0, 1, 0, 31, &[0x22; 32]).expect("write after poisoning still works");
        assert_eq!(session.read(0, 1, 0, 31).expect("read back"), vec![0x22; 32]);
        drop(session);
        for h in &mut handles {
            h.stop();
        }
    }

    #[test]
    fn panicked_worker_degrades_to_unreachable_then_recovers() {
        let (mut handles, mut session) = two_node_session();
        // Arm node 0's worker to panic on its next job: the write must
        // degrade that node to Unreachable instead of panicking the call.
        session.workers[0].panic_next.store(true, Ordering::SeqCst);
        let report = session.write_report(0, 1, 0, 31, &[0x33; 32]).expect("degraded write");
        assert_eq!(report.unreachable(), vec![0]);
        assert!(
            report
                .outcomes
                .iter()
                .any(|&(n, o)| n == 1 && matches!(o, SegmentOutcome::Applied { .. })),
            "node 1 must still apply its segments: {report:?}"
        );
        // The worker was respawned on the spot; a probe revives the node
        // and the next write goes through end to end.
        assert!(session.probe().iter().all(|h| matches!(h, NodeHealth::Alive { .. })));
        let report = session.write_report(0, 1, 0, 31, &[0x44; 32]).expect("write after respawn");
        assert!(report.fully_applied(), "{report:?}");
        assert_eq!(session.read(0, 1, 0, 31).expect("read back"), vec![0x44; 32]);
        drop(session);
        for h in &mut handles {
            h.stop();
        }
    }

    #[test]
    fn worker_handoff_survives_interleaved_panics_under_stress() {
        // Loom substitute (see CI's nightly interleaving jobs): shake the
        // submit → sync_channel → collect → respawn handoff by arming the
        // worker panic hook at shifting points across many iterations.
        // Every iteration must terminate (no deadlock on the bounded
        // queue, no hang on a dead worker's reply slot) and degrade —
        // never panic — the session.
        let (mut handles, mut session) = two_node_session();
        for i in 0..48u64 {
            if i % 3 == 0 {
                session.workers[(i as usize / 3) % 2].panic_next.store(true, Ordering::SeqCst);
            }
            let data = vec![i as u8; 32];
            match session.write_report(0, 1, 0, 31, &data) {
                Ok(report) => {
                    for (_, outcome) in &report.outcomes {
                        // Any outcome is legal under injected panics;
                        // reaching here means the handoff terminated.
                        let _ = outcome.written();
                    }
                }
                Err(e) => panic!("degraded write must not error: {e}"),
            }
            if i % 7 == 0 {
                // Revive fail-fast nodes so later iterations exercise the
                // full dispatch path again, not the dead-node shortcut.
                session.probe();
            }
        }
        // After the storm the session must still work end to end. The
        // first probe may absorb a still-armed panic (the hook fires on
        // the worker's next job, whatever it is); the second one runs on
        // freshly respawned workers and revives everything.
        session.probe();
        session.probe();
        let report = session.write_report(0, 1, 0, 31, &[0x77; 32]).expect("final write");
        assert!(report.fully_applied(), "{report:?}");
        assert_eq!(session.read(0, 1, 0, 31).expect("read back"), vec![0x77; 32]);
        drop(session);
        for h in &mut handles {
            h.stop();
        }
    }

    #[test]
    fn write_batch_pipelines_and_matches_sequential_writes() {
        // 4 nodes, row-block view over column-block physical: every 16-byte
        // row write scatters 4 bytes to each of the 4 nodes, and the batch
        // queues 4 such ops back to back per node worker.
        let physical = MatrixLayout::ColumnBlocks.partition(16, 16, 1, 4);
        let logical = MatrixLayout::RowBlocks.partition(16, 16, 1, 4);
        let (mut handles, addrs) =
            spawn_loopback(4, StorageBackend::Memory).expect("spawn loopback daemons");
        let mut session = Session::connect(&addrs);
        session.create_file(9, physical, 256).expect("create file");
        session.set_view(0, 9, &logical, 0).expect("set view");
        let rows: Vec<(u64, u64, Vec<u8>)> =
            (0..4u64).map(|i| (i * 16, i * 16 + 15, vec![0x50 + i as u8; 16])).collect();
        let ops: Vec<BatchWrite<'_>> =
            rows.iter().map(|(lo, hi, d)| BatchWrite { lo_v: *lo, hi_v: *hi, data: d }).collect();
        let reports = session.write_batch(0, 9, &ops).expect("batched write");
        assert_eq!(reports.len(), 4);
        assert!(reports.iter().all(RedistReport::fully_applied), "{reports:?}");
        for (lo, hi, d) in &rows {
            assert_eq!(&session.read(0, 9, *lo, *hi).expect("read row back"), d);
        }
        drop(session);
        for h in &mut handles {
            h.stop();
        }
    }
}
