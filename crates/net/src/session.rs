//! The compute-node session: one parallel file over N I/O-node daemons.
//!
//! A [`Session`] plays the compute-node half of the paper's protocol
//! against real daemons. `set_view` compiles the `MAP_V∘MAP_S⁻¹` access
//! plan through the process-wide [`PlanEngine`] — exactly the planner the
//! simulated `Clusterfile` uses, with repeat views answered from the plan
//! cache — keeps `PROJ_V(V∩S)` locally and ships
//! `PROJ_S(V∩S)` (plus the full raw view pattern, for the daemon's audit)
//! to each intersecting I/O node. `write` maps the interval extremities,
//! gathers view bytes per node and fans the messages out concurrently;
//! `read` runs the reverse path.

//!
//! # Degraded operation
//!
//! Every mutating request carries this session's `(session_id, seq)` retry
//! stamp, so daemons deduplicate replays and retrying is always safe.
//! [`Session::probe`] pings every node and records its boot epoch; nodes
//! that fail the probe are marked dead and writes fail fast on them
//! (outcome [`SegmentOutcome::Unreachable`]) instead of paying the retry
//! schedule per access. [`Session::write_report`] narrates exactly what
//! happened per node — applied, deduplicated replay, re-established after
//! a daemon restart, or unreachable — while [`Session::write`] keeps the
//! original all-or-error contract on top of it.
//!
//! # Replication
//!
//! [`Session::connect_replicated`] layers a [`ReplicaMap`] under the
//! physical partitioning: replica rank `k` of subfile `s` lives on node
//! `(s + k) % n`, opened under the rank-derived wire id
//! [`copy_file_id`]`(file, k)`. Writes fan each compiled-plan segment out
//! to all `R` replicas under one shared `(session, seq)` stamp, return
//! once `W = ⌈(R+1)/2⌉` replicas acknowledge, and drain the stragglers
//! asynchronously — failed replicas are queued in a [`DirtySet`] for
//! repair. Reads come from the first live replica and transparently fail
//! over to the next rank on an unreachable node or a daemon-side
//! [`ErrCode::ChecksumMismatch`], queueing the bad copy for repair.
//! [`Session::scrub`] walks every replica set, majority-votes the winning
//! contents by CRC32C, and re-clones lost, corrupt, or divergent copies
//! from the winner through the plan engine's identity view over the
//! chunked write pipeline.
//!
//! # Tail tolerance (DESIGN.md §16)
//!
//! Crash handling covers nodes that *die*; the resilience layer covers
//! nodes that are merely slow or overloaded. Every node client shares one
//! session-wide [`RetryBudget`], so a systemic outage runs the bucket dry
//! and fails fast instead of amplifying load. [`Session::set_deadline`]
//! attaches an absolute time budget that propagates to every node client
//! (and onto the wire at protocol ≥ 5). Each node has a [`CircuitBreaker`]
//! fed from every collected reply: an open breaker makes writes pre-skip
//! the replica (queued dirty, exactly like a dead node) and reads prefer
//! another rank, until a half-open probe re-closes it. Replicated reads
//! are *hedged*: when the primary replica has not answered within the
//! observed p95 latency, the same read is issued to a second copy and the
//! first valid answer wins — duplicates are safe because reads are
//! idempotent and writes are stamp-deduplicated.

use crate::backoff::Backoff;
use crate::client::NodeClient;
use crate::error::{ErrCode, NetError};
use crate::resilience::{
    Admission, BreakerState, CircuitBreaker, Deadline, LatencyTracker, RetryBudget,
};
use crate::server::{serve, DaemonConfig, DaemonHandle};
use crate::wire::{Reply, Request, StatInfo};
use clusterfile::{crc32c, StorageBackend};
use falls::{Falls, NestedFalls, NestedSet};
use parafile::engine::{CompiledView, PlanEngine};
use parafile::mapping::Mapper;
use parafile::model::{Partition, PartitionPattern};
use parafile_audit::{RawFalls, RawPattern};
use parafile_replica::{
    copy_file_id, plan_subfile, CopyHealth, DirtyReplica, DirtySet, ReplicaMap, ScrubVerdict,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant, SystemTime};

/// Locks a node client, recovering from poisoning (a panicked caller
/// must not wedge the whole session).
fn lock(m: &Mutex<NodeClient>) -> MutexGuard<'_, NodeClient> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Consecutive breaker-relevant failures (transport errors, `Busy` sheds)
/// before a node's circuit breaker trips open.
const BREAKER_THRESHOLD: u32 = 3;

/// How long a tripped breaker sheds a node before letting one half-open
/// probe request through.
const BREAKER_OPEN_FOR: Duration = Duration::from_millis(250);

/// Clamp bounds for the hedged-read trigger delay: the observed read p95
/// is kept within `[HEDGE_FLOOR, HEDGE_CEILING]` so hedges neither double
/// all traffic on a fast cluster nor wait forever on a slow one.
const HEDGE_FLOOR: Duration = Duration::from_millis(5);
const HEDGE_CEILING: Duration = Duration::from_millis(250);

/// Poll step while racing a primary read against its hedge.
const HEDGE_POLL: Duration = Duration::from_micros(200);

/// Where a dispatched request's reply lands (re-exported from the mux so
/// every collector keeps its existing shape: capacity-1 channel, one
/// terminal result).
use crate::mux::{mux_lost, ReplySlot};
use crate::pool::MuxHandle;

struct ViewState {
    view: Partition,
    element: usize,
    /// The engine-compiled access plan (view-side replay tables plus the
    /// symbolic projections), shared with the process-wide plan cache.
    plan: Arc<CompiledView>,
}

struct FileState {
    physical: Partition,
    len: u64,
    views: HashMap<u32, ViewState>,
}

/// What a [`Session::probe`] learned about one I/O node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Never probed.
    Unknown,
    /// Answered the last probe; `epoch` is its boot stamp (0 for a v1
    /// daemon that does not speak `Ping`). A changed epoch between probes
    /// means the daemon restarted and lost its session-visible state.
    Alive {
        /// The daemon's boot epoch.
        epoch: u64,
    },
    /// Failed the last probe (or a write); writes fail fast until a later
    /// probe revives it.
    Dead,
}

/// Per-node outcome of one redistribution write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentOutcome {
    /// The daemon applied the segments fresh.
    Applied {
        /// Bytes the daemon stored.
        written: u64,
    },
    /// The daemon had already applied this stamped write and answered from
    /// its dedup window — the retry cost nothing.
    Replayed {
        /// Bytes the original application stored.
        written: u64,
    },
    /// Applied after this session re-opened the file and re-shipped the
    /// view (the daemon restarted and had forgotten both).
    Recovered {
        /// Bytes the daemon stored.
        written: u64,
    },
    /// The node stayed unreachable through retries and re-establishment;
    /// its segments were not applied.
    Unreachable,
}

impl SegmentOutcome {
    /// Bytes this node acknowledged (0 when unreachable).
    #[must_use]
    pub fn written(&self) -> u64 {
        match *self {
            SegmentOutcome::Applied { written }
            | SegmentOutcome::Replayed { written }
            | SegmentOutcome::Recovered { written } => written,
            SegmentOutcome::Unreachable => 0,
        }
    }
}

/// What happened, node by node, during one redistribution write.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RedistReport {
    /// Total bytes acknowledged across all reachable nodes (counted once
    /// per subfile, not per replica).
    pub written: u64,
    /// `(subfile index, outcome)` for every subfile the interval
    /// intersects. Without replication a subfile and its node share the
    /// index; with replication the outcome is the subfile's best replica's.
    pub outcomes: Vec<(usize, SegmentOutcome)>,
}

impl RedistReport {
    /// Whether every intersecting subfile acknowledged its segments (on at
    /// least one replica).
    #[must_use]
    pub fn fully_applied(&self) -> bool {
        self.outcomes.iter().all(|(_, o)| !matches!(o, SegmentOutcome::Unreachable))
    }

    /// Subfile indices whose segments were not applied anywhere.
    #[must_use]
    pub fn unreachable(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .filter(|(_, o)| matches!(o, SegmentOutcome::Unreachable))
            .map(|&(n, _)| n)
            .collect()
    }
}

/// A compute node's connection to a set of I/O-node daemons, one subfile
/// per daemon (daemon order = subfile order).
///
/// Dispatch is multiplexed: one reactor-driven [`crate::mux::Mux`] thread
/// owns every node's warm connection, keeps many requests in flight per
/// connection (replies matched FIFO by request id) and runs all
/// retry/backoff/shed timing on a timer wheel — no per-node threads, no
/// bounded queues. Recovery paths (`reopen`, `reestablish`, …) lock the
/// shared per-node client directly between fan-outs. With
/// [`connect_pooled`](Session::connect_pooled) the driver is a lease on the
/// process-wide [`crate::pool`] instead of a private thread.
pub struct Session {
    nodes: Vec<Arc<Mutex<NodeClient>>>,
    /// The multiplexed transport all fan-outs dispatch through — private
    /// driver or pooled lease, depending on the constructor.
    mux: MuxHandle,
    files: HashMap<u64, FileState>,
    /// This session's retry-stamp namespace (nonzero; 0 is the unstamped
    /// wire sentinel).
    session_id: u64,
    /// Next retry sequence number.
    next_seq: AtomicU64,
    /// Last known health per node.
    health: Vec<NodeHealth>,
    /// Replica placement (`replicas == 1` reduces to the unreplicated
    /// protocol bit for bit: rank 0 keeps the caller's wire file id).
    map: ReplicaMap,
    /// Replica copies known stale, lost, or corrupt, awaiting scrub repair.
    dirty: DirtySet,
    /// Quorum-write stragglers still in flight.
    stragglers: Vec<Straggler>,
    /// Per-node circuit breakers, index-aligned with `nodes`. Mutexed so
    /// admission checks work from shared-borrow paths (the build phase of
    /// a write holds `&self` through the plan tables).
    breakers: Vec<Mutex<CircuitBreaker>>,
    /// Recent settled read latencies; their p95 picks the hedge delay.
    read_latency: LatencyTracker,
    /// Session-wide retry token bucket shared by every node client.
    retry_budget: Arc<RetryBudget>,
    /// The deadline currently propagated to every node client.
    deadline: Deadline,
    /// Hedged reads issued so far (observability).
    hedged_reads: u64,
    /// Hedge losers still in flight; their outcomes are owed to the
    /// breakers, drained alongside the write stragglers.
    read_stragglers: Vec<(usize, ReplySlot)>,
    /// Tenant id stamped on every `Open` (protocol ≥ 6) so daemons can
    /// meter per-tenant quotas; 0 = anonymous.
    tenant: u32,
}

/// A per-node request to fan out, with its target node index.
struct Outgoing {
    node: usize,
    request: Request,
}

/// One logical write of a [`Session::write_batch`]: a view interval and
/// its bytes.
#[derive(Debug, Clone, Copy)]
pub struct BatchWrite<'a> {
    /// First view offset of the interval.
    pub lo_v: u64,
    /// Last view offset of the interval.
    pub hi_v: u64,
    /// The interval's bytes (`hi_v - lo_v + 1` of them).
    pub data: &'a [u8],
}

/// Compute-id namespace the scrub/repair path uses for its identity
/// views, disjoint from application compute nodes (which are dense small
/// integers in practice).
pub const SCRUB_COMPUTE: u32 = u32::MAX;

/// A quorum-write straggler: a replica whose reply had not been collected
/// when the write returned (the quorum was already satisfied). Drained
/// opportunistically on later writes and synchronously at flush/scrub; a
/// straggler that failed is queued dirty.
struct Straggler {
    file: u64,
    subfile: usize,
    rank: usize,
    node: usize,
    slot: ReplySlot,
}

/// One subfile's share of a quorum write, as built: per-rank requests in
/// rank order, plus the replicas pre-skipped because their node is dead.
struct BuiltGroup {
    subfile: usize,
    /// `(rank, node, request)` in rank order.
    targets: Vec<(usize, usize, Request)>,
    /// `(rank, node)` replicas on fail-fast dead nodes (no request sent).
    pre_dirty: Vec<(usize, usize)>,
}

/// One subfile's share of a quorum write, as dispatched: per-rank reply
/// slots awaiting collection.
struct GroupWait {
    subfile: usize,
    /// `(rank, node, slot)` in rank order.
    waits: Vec<(usize, usize, Result<ReplySlot, NetError>)>,
    pre_dirty: Vec<(usize, usize)>,
}

/// Scrub summary for one file: the verdict per subfile plus repair
/// counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// `(subfile, verdict)` for every subfile, in index order.
    pub verdicts: Vec<(usize, ScrubVerdict)>,
    /// Copies re-cloned from a healthy source this pass.
    pub repaired: usize,
    /// Copies that needed repair but could not be repaired this pass (or,
    /// in verify-only mode, would have been repaired); they stay queued
    /// dirty for a later pass.
    pub failed: usize,
    /// Copies skipped because their node was unreachable at probe time.
    pub skipped: usize,
    /// Subfiles with no healthy copy left — data loss.
    pub lost: Vec<usize>,
}

impl ScrubReport {
    /// Whether every subfile ended the pass at full R-way redundancy.
    #[must_use]
    pub fn fully_redundant(&self) -> bool {
        self.lost.is_empty() && self.failed == 0 && self.skipped == 0
    }
}

impl Session {
    /// Connects lazily to one daemon per address (`host:port` or
    /// `unix:/path`); address order defines subfile order.
    #[must_use]
    pub fn connect(addrs: &[String]) -> Self {
        Self::with_map(addrs, ReplicaMap::unreplicated(addrs.len()), false)
    }

    /// Like [`connect`](Self::connect), but the mux driver (and its one
    /// connection per node) is leased from the process-wide [`crate::pool`]:
    /// every pooled session for the same address set multiplexes over the
    /// same warm sockets, while deadlines, retry budgets, breakers, and
    /// (session, seq) stamps stay per-session. Dropping a pooled session
    /// returns the lease and leaves the driver warm for the next one.
    #[must_use]
    pub fn connect_pooled(addrs: &[String]) -> Self {
        Self::with_map(addrs, ReplicaMap::unreplicated(addrs.len()), true)
    }

    /// Like [`connect`](Self::connect), but every subfile is replicated on
    /// `replicas` nodes: rank `k` of subfile `s` lives on node
    /// `(s + k) % n` under the derived wire id [`copy_file_id`]`(file, k)`.
    /// Fails when `replicas` exceeds the node count (the copies could not
    /// land on distinct nodes).
    pub fn connect_replicated(addrs: &[String], replicas: usize) -> Result<Self, NetError> {
        let map = ReplicaMap::new(addrs.len().max(1), replicas)
            .map_err(|e| NetError::Usage(e.to_string()))?;
        Ok(Self::with_map(addrs, map, false))
    }

    /// [`connect_replicated`](Self::connect_replicated) over a pooled mux
    /// lease — see [`connect_pooled`](Self::connect_pooled).
    pub fn connect_replicated_pooled(addrs: &[String], replicas: usize) -> Result<Self, NetError> {
        let map = ReplicaMap::new(addrs.len().max(1), replicas)
            .map_err(|e| NetError::Usage(e.to_string()))?;
        Ok(Self::with_map(addrs, map, true))
    }

    fn with_map(addrs: &[String], map: ReplicaMap, pooled: bool) -> Self {
        // A clock-and-pid stamp is unique enough across real client
        // processes; collisions only widen dedup to a twin session.
        let session_id = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64)
            ^ (u64::from(std::process::id()) << 32);
        let retry_budget = Arc::new(RetryBudget::for_session());
        let nodes: Vec<Arc<Mutex<NodeClient>>> = addrs
            .iter()
            .map(|a| {
                Arc::new(Mutex::new(
                    NodeClient::new(a).with_retry_budget(Arc::clone(&retry_budget)),
                ))
            })
            .collect();
        let mux = if pooled {
            MuxHandle::pooled(addrs, Arc::clone(&retry_budget))
        } else {
            MuxHandle::dedicated(addrs, Arc::clone(&retry_budget))
        };
        Self {
            nodes,
            mux,
            files: HashMap::new(),
            session_id: session_id.max(1),
            next_seq: AtomicU64::new(1),
            health: vec![NodeHealth::Unknown; addrs.len()],
            map,
            dirty: DirtySet::new(),
            stragglers: Vec::new(),
            breakers: (0..addrs.len())
                .map(|_| Mutex::new(CircuitBreaker::new(BREAKER_THRESHOLD, BREAKER_OPEN_FOR)))
                .collect(),
            read_latency: LatencyTracker::new(),
            retry_budget,
            deadline: Deadline::none(),
            hedged_reads: 0,
            read_stragglers: Vec::new(),
            tenant: 0,
        }
    }

    /// Sets the tenant id stamped on every subsequent `Open` (protocol ≥ 6
    /// daemons meter per-tenant inflight quotas and fair-queue dispatch by
    /// it; older daemons ignore it). Builder-style so connection chains
    /// read naturally.
    #[must_use]
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// The tenant id this session stamps on `Open` requests.
    #[must_use]
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// Number of I/O nodes this session spans.
    #[must_use]
    pub fn io_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of subfiles per file (one per I/O node, whatever the
    /// replication factor).
    fn subfiles(&self) -> usize {
        self.nodes.len()
    }

    /// Replication factor R of this session.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.map.replicas()
    }

    /// Snapshot of the replica copies currently queued for repair.
    #[must_use]
    pub fn dirty_replicas(&self) -> Vec<DirtyReplica> {
        self.dirty.iter().copied().collect()
    }

    /// First replica rank of subfile `s` whose node is not known dead and
    /// whose breaker admits a request — the preferred read source (rank 0
    /// when everything is healthy, so `R = 1` reads are unchanged). A rank
    /// admitted as a half-open probe is chosen like any other: the request
    /// that follows *is* the probe, and its collected outcome settles the
    /// breaker.
    fn first_live_rank(&self, s: usize) -> usize {
        (0..self.map.replicas())
            .find(|&k| {
                let node = self.map.node_for(s, k);
                self.health[node] != NodeHealth::Dead && self.breaker_admits(node)
            })
            .unwrap_or(0)
    }

    /// Locks `node`'s breaker, recovering from poisoning.
    fn breaker(&self, node: usize) -> MutexGuard<'_, CircuitBreaker> {
        self.breakers[node].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Asks `node`'s breaker whether a request may go out now. `Probe`
    /// admissions count as yes — the caller's request becomes the probe,
    /// so every admitted request must have its outcome collected.
    fn breaker_admits(&self, node: usize) -> bool {
        !matches!(self.breaker(node).admit(), Admission::Shed)
    }

    /// Whether `node`'s breaker is fully closed — the bar for *hedge*
    /// targets, which are speculative and must not consume the single
    /// half-open probe slot.
    fn breaker_closed(&self, node: usize) -> bool {
        self.breaker(node).state() == BreakerState::Closed
    }

    /// Records a call outcome on `node`'s breaker.
    fn note_node(&self, node: usize, ok: bool) {
        let mut b = self.breaker(node);
        if ok {
            b.record_success();
        } else {
            b.record_failure();
        }
    }

    /// Classifies a settled reply for `node`'s breaker: transport errors
    /// and shed requests are failures, any substantive answer (including
    /// protocol errors — the node is alive and serving) is a success.
    /// Client-local deadline expiry says nothing about the node and is
    /// not recorded.
    fn note_reply(&self, node: usize, reply: &Result<Reply, NetError>) {
        let ok = match reply {
            Err(NetError::Io(_) | NetError::IdMismatch { .. } | NetError::Busy { .. }) => false,
            Err(NetError::Protocol(e)) if e.code == ErrCode::DeadlineExceeded => return,
            _ => true,
        };
        self.note_node(node, ok);
    }

    /// The current breaker position of `node` (observability / tests).
    #[must_use]
    pub fn breaker_state(&self, node: usize) -> BreakerState {
        self.breaker(node).state()
    }

    /// Hedged reads issued so far.
    #[must_use]
    pub fn hedged_reads(&self) -> u64 {
        self.hedged_reads
    }

    /// The session-wide retry token bucket shared by every node client.
    #[must_use]
    pub fn retry_budget(&self) -> &Arc<RetryBudget> {
        &self.retry_budget
    }

    /// Attaches an absolute deadline to every subsequent operation: it is
    /// installed on every node client, clamps their socket timeouts, vetoes
    /// their retries once spent, and rides protocol-v5 frames so daemons
    /// refuse to start work the budget can no longer pay for. Pass
    /// [`Deadline::none`] to remove it.
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = deadline;
        self.mux.set_deadline(deadline);
        for node in &self.nodes {
            lock(node).set_deadline(deadline);
        }
    }

    /// The deadline currently attached to this session's operations.
    #[must_use]
    pub fn deadline(&self) -> Deadline {
        self.deadline
    }

    /// Resets `node`'s transport path after a faulted request: the mux
    /// drops the node's warm connection (in-flight requests ride the
    /// normal retry ladder) while the shared client — and so its own warm
    /// connection and backoff state — carries over.
    fn respawn(&mut self, node: usize) {
        self.mux.reset_node(node);
    }

    /// Dispatches one request for `node` into the mux. Returns the slot
    /// the reply will arrive on; never blocks (in-flight depth is bounded
    /// by the daemon's admission control, not a client queue).
    fn submit(&mut self, node: usize, request: Request) -> Result<ReplySlot, NetError> {
        self.mux.submit(node, request)
    }

    /// Collects one submitted reply, recording its outcome on the node's
    /// breaker. A slot that closed without a message means the mux driver
    /// died under the request; it is surfaced as a lost-transport error.
    fn collect(
        &mut self,
        node: usize,
        slot: Result<ReplySlot, NetError>,
    ) -> Result<Reply, NetError> {
        let reply = match slot {
            Ok(rx) => match rx.recv() {
                Ok(reply) => reply,
                Err(_) => {
                    self.respawn(node);
                    Err(mux_lost(node))
                }
            },
            Err(e) => Err(e),
        };
        self.note_reply(node, &reply);
        reply
    }

    /// Fans `requests` out through the mux concurrently and returns the
    /// replies in the same order.
    fn fan_out(&mut self, requests: Vec<Outgoing>) -> Vec<(usize, Result<Reply, NetError>)> {
        // `Open` frames establish the connection's tenant at the daemon
        // (protocol ≥ 6), so they must travel on the mux conn — the data
        // plane all later writes share — never the side-channel client the
        // single-target shortcut below would pick.
        let announces_tenant = requests.iter().any(|o| matches!(o.request, Request::Open { .. }));
        if requests.len() == 1 && !announces_tenant {
            // Skip the queue round trip for the single-target case.
            return match requests.into_iter().next() {
                Some(Outgoing { node, request }) => {
                    let reply = lock(&self.nodes[node]).call(&request);
                    self.note_reply(node, &reply);
                    vec![(node, reply)]
                }
                None => Vec::new(),
            };
        }
        let submitted: Vec<(usize, Result<ReplySlot, NetError>)> = requests
            .into_iter()
            .map(|Outgoing { node, request }| {
                let slot = self.submit(node, request);
                (node, slot)
            })
            .collect();
        submitted
            .into_iter()
            .map(|(node, slot)| {
                let reply = self.collect(node, slot);
                (node, reply)
            })
            .collect()
    }

    /// Like [`fan_out`](Self::fan_out) but every reply must be `Ok`.
    fn fan_out_ok(&mut self, requests: Vec<Outgoing>) -> Result<(), NetError> {
        for (_, reply) in self.fan_out(requests) {
            match reply? {
                Reply::Ok => {}
                other => return Err(NetError::BadReply(format!("expected Ok, got {other:?}"))),
            }
        }
        Ok(())
    }

    /// Creates `file` of `len` bytes, physically partitioned by `physical`
    /// (one element per I/O node), opening each subfile on its daemon.
    pub fn create_file(
        &mut self,
        file: u64,
        physical: Partition,
        len: u64,
    ) -> Result<(), NetError> {
        if physical.element_count() != self.nodes.len() {
            return Err(NetError::Usage(format!(
                "physical partition has {} elements but the session spans {} I/O nodes",
                physical.element_count(),
                self.nodes.len()
            )));
        }
        let mut requests = Vec::with_capacity(self.nodes.len() * self.map.replicas());
        for s in 0..self.subfiles() {
            let sub_len = physical.element_len(s, len)?;
            for rank in 0..self.map.replicas() {
                requests.push(Outgoing {
                    node: self.map.node_for(s, rank),
                    request: Request::Open {
                        file: copy_file_id(file, rank),
                        subfile: s as u32,
                        len: sub_len,
                        tenant: self.tenant,
                    },
                });
            }
        }
        self.fan_out_ok(requests)?;
        self.files.insert(file, FileState { physical, len, views: HashMap::new() });
        Ok(())
    }

    fn file(&self, file: u64) -> Result<&FileState, NetError> {
        self.files
            .get(&file)
            .ok_or_else(|| NetError::Usage(format!("file {file} was not created in this session")))
    }

    fn view(&self, file: u64, compute: u32) -> Result<(&FileState, &ViewState), NetError> {
        let st = self.file(file)?;
        let vs = st.views.get(&compute).ok_or_else(|| {
            NetError::Usage(format!("compute node {compute} has no view on file {file}"))
        })?;
        Ok((st, vs))
    }

    /// Sets compute node `compute`'s view on `file` to element `element` of
    /// `logical`. Compiles the access plan once, keeps the view-side
    /// projections locally, and ships each subfile-side projection (with
    /// the raw view pattern for auditing) to its I/O node.
    pub fn set_view(
        &mut self,
        compute: u32,
        file: u64,
        logical: &Partition,
        element: usize,
    ) -> Result<(), NetError> {
        let st = self.file(file)?;
        let plan = PlanEngine::global().compile_view(logical, element, &st.physical)?;
        let raw_view = RawPattern::from_partition(logical);
        let mut requests = Vec::new();
        let mut meta = Vec::new();
        for (s, access) in plan.per_subfile().iter().enumerate() {
            if !access.is_empty() {
                let proj_set: Vec<RawFalls> =
                    access.proj_sub.set.families().iter().map(RawFalls::from_nested).collect();
                for rank in 0..self.map.replicas() {
                    requests.push(Outgoing {
                        node: self.map.node_for(s, rank),
                        request: Request::SetView {
                            file: copy_file_id(file, rank),
                            compute,
                            element: element as u32,
                            view: raw_view.clone(),
                            proj_set: proj_set.clone(),
                            proj_period: access.proj_sub.period,
                        },
                    });
                    meta.push((s, rank));
                }
            }
        }
        let retry: Vec<Request> = requests.iter().map(|o| o.request.clone()).collect();
        for (i, (node, reply)) in self.fan_out(requests).into_iter().enumerate() {
            let (s, rank) = meta[i];
            match reply {
                Ok(Reply::Ok) => {}
                Ok(other) => return Err(NetError::BadReply(format!("expected Ok, got {other:?}"))),
                Err(NetError::Protocol(e)) if matches!(e.code, ErrCode::UnknownFile) => {
                    // The daemon restarted since `create_file` and forgot
                    // the subfile: re-open it and retry the view once.
                    self.reopen_copy(s, rank, file)?;
                    lock(&self.nodes[node]).expect_ok(&retry[i])?;
                }
                Err(NetError::Io(_) | NetError::IdMismatch { .. }) if self.map.replicas() > 1 => {
                    // A dead replica does not block the view: the copy is
                    // queued dirty and the view re-ships on recovery
                    // (`reestablish_copy`) or repair.
                    self.health[node] = NodeHealth::Dead;
                    self.dirty.insert(DirtyReplica { file, subfile: s, rank, node });
                }
                Err(e) => return Err(e),
            }
        }
        let vs = ViewState { view: logical.clone(), element, plan };
        let Some(fs) = self.files.get_mut(&file) else {
            return Err(NetError::Usage(format!("file {file} was not created in this session")));
        };
        fs.views.insert(compute, vs);
        Ok(())
    }

    /// Maps the view interval `[lo_v, hi_v]` onto subfile `s`, returning
    /// the subfile-linear extremities (the paper's `t_m` phase).
    fn map_extremities(
        st: &FileState,
        vs: &ViewState,
        s: usize,
        lo_v: u64,
        hi_v: u64,
    ) -> Result<(u64, u64), NetError> {
        if vs.plan.access(s).perfect_match {
            return Ok((lo_v, hi_v));
        }
        let mv = Mapper::new(&vs.view, vs.element);
        let ms = Mapper::new(&st.physical, s);
        let l_s = ms.map_next(mv.unmap(lo_v));
        let r_s = ms.map_prev(mv.unmap(hi_v)).ok_or_else(|| {
            NetError::Usage(format!("subfile {s} holds no data at or below view offset {hi_v}"))
        })?;
        Ok((l_s, r_s))
    }

    /// Writes `data` over the view interval `[lo_v, hi_v]` of `file` as
    /// compute node `compute`: per intersecting subfile, map the
    /// extremities, gather the view bytes, and send — all nodes
    /// concurrently. Returns the total bytes the daemons actually stored
    /// (less than `data.len()` when the interval runs past a subfile's
    /// physical end). Fails if any intersecting node stays unreachable;
    /// use [`write_report`](Self::write_report) to keep partial progress.
    pub fn write(
        &mut self,
        compute: u32,
        file: u64,
        lo_v: u64,
        hi_v: u64,
        data: &[u8],
    ) -> Result<u64, NetError> {
        let report = self.write_report(compute, file, lo_v, hi_v, data)?;
        let down = report.unreachable();
        if down.is_empty() {
            Ok(report.written)
        } else {
            Err(NetError::Io(std::io::Error::other(format!(
                "I/O node(s) {down:?} unreachable; their segments were not applied"
            ))))
        }
    }

    /// Like [`write`](Self::write), but degrades instead of failing: dead
    /// or newly-unreachable nodes are reported per segment group while the
    /// healthy nodes' writes proceed. A daemon that restarted (and so
    /// forgot the file and view) is transparently re-established from this
    /// session's cached state and the write retried once. Only usage
    /// errors and non-recoverable protocol errors abort the whole call.
    pub fn write_report(
        &mut self,
        compute: u32,
        file: u64,
        lo_v: u64,
        hi_v: u64,
        data: &[u8],
    ) -> Result<RedistReport, NetError> {
        let mut reports = self.write_batch(compute, file, &[BatchWrite { lo_v, hi_v, data }])?;
        reports
            .pop()
            .ok_or_else(|| NetError::BadReply("write batch returned no report".to_string()))
    }

    /// Pipelines several logical writes through the per-node mux
    /// queues: every op's per-node messages are enqueued back to back
    /// before any reply is collected, so the transport streams each
    /// node's whole batch over its warm connection without a per-op
    /// barrier.
    /// Returns one [`RedistReport`] per op, in op order, with the same
    /// degradation semantics as [`write_report`](Self::write_report).
    pub fn write_batch(
        &mut self,
        compute: u32,
        file: u64,
        ops: &[BatchWrite<'_>],
    ) -> Result<Vec<RedistReport>, NetError> {
        // Account for earlier writes' stragglers that have landed since.
        self.drain_stragglers(false);
        // Validate and build every op's per-node requests up front (the
        // paper's t_m and t_g phases), so the submit phase below is pure
        // dispatch.
        let mut built = Vec::with_capacity(ops.len());
        for op in ops {
            if op.lo_v > op.hi_v || op.data.len() as u64 != op.hi_v - op.lo_v + 1 {
                return Err(NetError::Usage(format!(
                    "data holds {} bytes but the interval [{}, {}] needs {}",
                    op.data.len(),
                    op.lo_v,
                    op.hi_v,
                    op.hi_v.saturating_sub(op.lo_v).saturating_add(1),
                )));
            }
            built.push(self.build_write(compute, file, op.lo_v, op.hi_v, op.data)?);
        }
        // Dispatch phase: enqueue everything before collecting anything.
        let mut pending = Vec::with_capacity(built.len());
        for groups in built {
            let waits: Vec<GroupWait> = groups
                .into_iter()
                .map(|g| GroupWait {
                    subfile: g.subfile,
                    waits: g
                        .targets
                        .into_iter()
                        .map(|(rank, node, request)| {
                            let slot = self.submit(node, request);
                            (rank, node, slot)
                        })
                        .collect(),
                    pre_dirty: g.pre_dirty,
                })
                .collect();
            pending.push(waits);
        }
        // Collect phase, in op order (the mux settles each node's
        // requests in FIFO order, so op k's reply on a node precedes
        // op k+1's).
        let mut out = Vec::with_capacity(pending.len());
        for (waits, op) in pending.into_iter().zip(ops) {
            let mut report = RedistReport::default();
            for group in waits {
                let (subfile, outcome) = self.collect_group(compute, file, op, group)?;
                report.written += outcome.written();
                report.outcomes.push((subfile, outcome));
            }
            report.outcomes.sort_unstable_by_key(|&(n, _)| n);
            out.push(report);
        }
        Ok(out)
    }

    /// Builds one logical write's per-replica messages: map the
    /// extremities, gather the view bytes, stamp the dedup sequence — one
    /// `(session, seq)` shared by all `R` copies of a subfile, so every
    /// replica daemon deduplicates the same logical write. Replicas on
    /// dead nodes are pre-skipped (no message, queued dirty at collect).
    fn build_write(
        &self,
        compute: u32,
        file: u64,
        lo_v: u64,
        hi_v: u64,
        data: &[u8],
    ) -> Result<Vec<BuiltGroup>, NetError> {
        let session = self.session_id;
        let (st, vs) = self.view(file, compute)?;
        let mut groups = Vec::new();
        for s in 0..self.subfiles() {
            let replay = vs.plan.replay(s);
            if replay.is_empty() {
                continue;
            }
            let covered = replay.bytes_between(lo_v, hi_v);
            if covered == 0 {
                continue;
            }
            let (l_s, r_s) = Self::map_extremities(st, vs, s, lo_v, hi_v)?;
            // Gather the non-contiguous view data into one message buffer
            // (the paper's t_g phase); a fully-covered interval is a plain
            // copy.
            let mut payload = Vec::with_capacity(covered as usize);
            replay.for_each_between(lo_v, hi_v, |seg| {
                let a = (seg.l() - lo_v) as usize;
                let b = (seg.r() - lo_v) as usize;
                payload.extend_from_slice(&data[a..=b]);
            });
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            let mut group = BuiltGroup { subfile: s, targets: Vec::new(), pre_dirty: Vec::new() };
            for rank in 0..self.map.replicas() {
                let node = self.map.node_for(s, rank);
                if self.health[node] == NodeHealth::Dead || !self.breaker_admits(node) {
                    // Fail fast: a node that failed its last probe — or
                    // whose breaker is open — gets no request (and no
                    // retry schedule); the copy is queued dirty instead of
                    // blocking the quorum, and scrub repairs it later.
                    group.pre_dirty.push((rank, node));
                    continue;
                }
                group.targets.push((
                    rank,
                    node,
                    Request::Write {
                        file: copy_file_id(file, rank),
                        compute,
                        l_s,
                        r_s,
                        session,
                        seq,
                        payload: payload.clone(),
                    },
                ));
            }
            groups.push(group);
        }
        Ok(groups)
    }

    /// Collects one subfile's quorum: replies are taken in rank order
    /// until `W = ⌈(R+1)/2⌉` copies (clamped to the copies actually sent)
    /// acknowledge; the rest become stragglers drained asynchronously.
    /// Failed copies are queued dirty; the subfile succeeds — possibly
    /// degraded below quorum — as long as one replica applied it.
    fn collect_group(
        &mut self,
        compute: u32,
        file: u64,
        op: &BatchWrite<'_>,
        group: GroupWait,
    ) -> Result<(usize, SegmentOutcome), NetError> {
        let subfile = group.subfile;
        for (rank, node) in group.pre_dirty {
            self.dirty.insert(DirtyReplica { file, subfile, rank, node });
        }
        let quorum = self.map.write_quorum().min(group.waits.len()).max(1);
        let mut first_ack: Option<SegmentOutcome> = None;
        let mut acks = 0usize;
        let mut waits = group.waits.into_iter();
        for (rank, node, slot) in waits.by_ref() {
            let reply = self.collect(node, slot);
            let outcome = self.copy_write_outcome(
                subfile, rank, node, compute, file, op.lo_v, op.hi_v, op.data, reply,
            )?;
            if matches!(outcome, SegmentOutcome::Unreachable) {
                self.dirty.insert(DirtyReplica { file, subfile, rank, node });
            } else {
                acks += 1;
                if first_ack.is_none() {
                    first_ack = Some(outcome);
                }
                if acks >= quorum {
                    break;
                }
            }
        }
        // Quorum satisfied: the remaining replicas complete asynchronously.
        for (rank, node, slot) in waits {
            match slot {
                Ok(slot) => self.stragglers.push(Straggler { file, subfile, rank, node, slot }),
                Err(_) => {
                    self.dirty.insert(DirtyReplica { file, subfile, rank, node });
                }
            }
        }
        Ok((subfile, first_ack.unwrap_or(SegmentOutcome::Unreachable)))
    }

    /// Maps one replica's write reply to its segment outcome, driving
    /// restart recovery and dead-node bookkeeping on the way.
    #[allow(clippy::too_many_arguments)]
    fn copy_write_outcome(
        &mut self,
        subfile: usize,
        rank: usize,
        node: usize,
        compute: u32,
        file: u64,
        lo_v: u64,
        hi_v: u64,
        data: &[u8],
        reply: Result<Reply, NetError>,
    ) -> Result<SegmentOutcome, NetError> {
        Ok(match reply {
            Ok(Reply::WriteOk { written, replayed: false }) => SegmentOutcome::Applied { written },
            Ok(Reply::WriteOk { written, replayed: true }) => SegmentOutcome::Replayed { written },
            Ok(other) => {
                return Err(NetError::BadReply(format!(
                    "node {node}: expected WriteOk, got {other:?}"
                )))
            }
            Err(NetError::Protocol(e))
                if matches!(e.code, ErrCode::UnknownFile | ErrCode::NoView) =>
            {
                // The daemon restarted and forgot this session's state:
                // re-open the copy, re-ship the view, retry once.
                match self.recover_write(subfile, rank, compute, file, lo_v, hi_v, data) {
                    Ok(written) => SegmentOutcome::Recovered { written },
                    Err(NetError::Io(_) | NetError::IdMismatch { .. }) => {
                        self.health[node] = NodeHealth::Dead;
                        SegmentOutcome::Unreachable
                    }
                    Err(other) => return Err(other),
                }
            }
            Err(NetError::Io(_) | NetError::IdMismatch { .. }) => {
                // The node stayed down through the transport's whole
                // retry schedule (or its driver died): mark it dead so
                // later writes fail fast until a probe revives it.
                self.health[node] = NodeHealth::Dead;
                SegmentOutcome::Unreachable
            }
            Err(NetError::Busy { .. }) => {
                // The daemon shed the write (admission control): the node
                // is alive, so it stays out of the dead set, but this copy
                // missed the write — queued dirty by the caller, repaired
                // by scrub once the overload passes.
                SegmentOutcome::Unreachable
            }
            Err(other) => return Err(other),
        })
    }

    /// Drains quorum-write stragglers: non-blocking between writes (only
    /// replies that already landed are accounted), blocking at barriers
    /// (flush, scrub, session drop). A straggler that failed is queued
    /// dirty; every settled outcome also lands on its node's breaker.
    fn drain_stragglers(&mut self, block: bool) {
        self.drain_read_stragglers(block);
        let pending = std::mem::take(&mut self.stragglers);
        for s in pending {
            let reply = if block {
                s.slot.recv().map_err(|_| ())
            } else {
                match s.slot.try_recv() {
                    Ok(reply) => Ok(reply),
                    Err(mpsc::TryRecvError::Empty) => {
                        self.stragglers.push(s);
                        continue;
                    }
                    Err(mpsc::TryRecvError::Disconnected) => Err(()),
                }
            };
            if let Ok(reply) = &reply {
                self.note_reply(s.node, reply);
            } else {
                self.note_node(s.node, false);
            }
            match reply {
                Ok(Ok(Reply::WriteOk { .. })) => {}
                Ok(Err(NetError::Io(_) | NetError::IdMismatch { .. })) | Err(()) => {
                    self.health[s.node] = NodeHealth::Dead;
                    self.dirty.insert(DirtyReplica {
                        file: s.file,
                        subfile: s.subfile,
                        rank: s.rank,
                        node: s.node,
                    });
                }
                Ok(_) => {
                    self.dirty.insert(DirtyReplica {
                        file: s.file,
                        subfile: s.subfile,
                        rank: s.rank,
                        node: s.node,
                    });
                }
            }
        }
    }

    /// Drains hedge losers the same way: their replies are not data anyone
    /// is waiting for, but the breakers are owed the outcomes (a parked
    /// half-open probe that never settled would shed its node forever).
    fn drain_read_stragglers(&mut self, block: bool) {
        let pending = std::mem::take(&mut self.read_stragglers);
        for (node, slot) in pending {
            let reply = if block {
                slot.recv().map_err(|_| ())
            } else {
                match slot.try_recv() {
                    Ok(reply) => Ok(reply),
                    Err(mpsc::TryRecvError::Empty) => {
                        self.read_stragglers.push((node, slot));
                        continue;
                    }
                    Err(mpsc::TryRecvError::Disconnected) => Err(()),
                }
            };
            match reply {
                Ok(reply) => self.note_reply(node, &reply),
                Err(()) => self.note_node(node, false),
            }
        }
    }

    /// Re-`Open`s replica `rank` of `file`'s subfile `subfile` with the
    /// session's cached geometry — the first half of restart recovery. On
    /// a restarted daemon the open also replays its journal into any
    /// surviving bytes.
    fn reopen_copy(&self, subfile: usize, rank: usize, file: u64) -> Result<(), NetError> {
        let st = self.file(file)?;
        let sub_len = st.physical.element_len(subfile, st.len)?;
        lock(&self.nodes[self.map.node_for(subfile, rank)]).expect_ok(&Request::Open {
            file: copy_file_id(file, rank),
            subfile: subfile as u32,
            len: sub_len,
            tenant: self.tenant,
        })
    }

    /// Re-establishes replica `rank` of subfile `subfile` after a daemon
    /// restart: re-`Open` the copy (which replays the daemon's journal
    /// into any surviving bytes) and re-ship compute `compute`'s view, all
    /// from this session's cached state.
    fn reestablish_copy(
        &self,
        subfile: usize,
        rank: usize,
        compute: u32,
        file: u64,
    ) -> Result<(), NetError> {
        self.reopen_copy(subfile, rank, file)?;
        let (st, vs) = self.view(file, compute)?;
        // Cache hit in the common case: the same (view, physical) pair was
        // compiled when the view was first set.
        let plan = PlanEngine::global().compile_view(&vs.view, vs.element, &st.physical)?;
        let access = plan.access(subfile);
        let mut client = lock(&self.nodes[self.map.node_for(subfile, rank)]);
        if !access.is_empty() {
            let proj_set: Vec<RawFalls> =
                access.proj_sub.set.families().iter().map(RawFalls::from_nested).collect();
            client.expect_ok(&Request::SetView {
                file: copy_file_id(file, rank),
                compute,
                element: vs.element as u32,
                view: RawPattern::from_partition(&vs.view),
                proj_set,
                proj_period: access.proj_sub.period,
            })?;
        }
        Ok(())
    }

    /// [`reestablish_copy`](Self::reestablish_copy), then retry the write
    /// for that replica once. The retry carries a fresh stamp: the
    /// daemon's dedup window (repopulated from its journal) decides
    /// whether the original write already landed.
    #[allow(clippy::too_many_arguments)]
    fn recover_write(
        &mut self,
        subfile: usize,
        rank: usize,
        compute: u32,
        file: u64,
        lo_v: u64,
        hi_v: u64,
        data: &[u8],
    ) -> Result<u64, NetError> {
        self.reestablish_copy(subfile, rank, compute, file)?;
        let session = self.session_id;
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let (st, vs) = self.view(file, compute)?;
        let (l_s, r_s) = Self::map_extremities(st, vs, subfile, lo_v, hi_v)?;
        let replay = vs.plan.replay(subfile);
        let mut payload = Vec::with_capacity(replay.bytes_between(lo_v, hi_v) as usize);
        replay.for_each_between(lo_v, hi_v, |seg| {
            let a = (seg.l() - lo_v) as usize;
            let b = (seg.r() - lo_v) as usize;
            payload.extend_from_slice(&data[a..=b]);
        });
        let mut client = lock(&self.nodes[self.map.node_for(subfile, rank)]);
        match client.call(&Request::Write {
            file: copy_file_id(file, rank),
            compute,
            l_s,
            r_s,
            session,
            seq,
            payload,
        })? {
            Reply::WriteOk { written, .. } => Ok(written),
            other => Err(NetError::BadReply(format!("expected WriteOk, got {other:?}"))),
        }
    }

    /// Pings every node: records and returns each node's health. An
    /// unreachable node is marked [`NodeHealth::Dead`] (writes fail fast on
    /// it); a reachable one is revived, with its boot epoch captured so a
    /// caller comparing successive probes can detect restarts.
    pub fn probe(&mut self) -> Vec<NodeHealth> {
        let replies: Vec<(usize, Result<Reply, NetError>)> = self.fan_out(
            (0..self.nodes.len()).map(|s| Outgoing { node: s, request: Request::Ping }).collect(),
        );
        for (node, reply) in replies {
            self.health[node] = match reply {
                Ok(Reply::Pong { epoch, .. }) => NodeHealth::Alive { epoch },
                // A daemon that answers at all is alive, even a v1 one that
                // rejects Ping as malformed.
                Ok(_) | Err(NetError::Protocol(_)) => NodeHealth::Alive { epoch: 0 },
                Err(_) => NodeHealth::Dead,
            };
        }
        self.health.clone()
    }

    /// The last known health of every node (updated by probes and writes).
    #[must_use]
    pub fn health(&self) -> &[NodeHealth] {
        &self.health
    }

    /// This session's retry-stamp namespace.
    #[must_use]
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Reads the view interval `[lo_v, hi_v]` of `file` as compute node
    /// `compute`. Bytes past a subfile's physical end read as zero (the
    /// partial-read complement of short writes). Each subfile is read
    /// from its first live replica, failing over to the next rank on an
    /// unreachable node or a daemon-side checksum mismatch (the bad copy
    /// is queued for repair) — the self-healing read path.
    pub fn read(
        &mut self,
        compute: u32,
        file: u64,
        lo_v: u64,
        hi_v: u64,
    ) -> Result<Vec<u8>, NetError> {
        if lo_v > hi_v {
            return Err(NetError::Usage(format!("interval [{lo_v}, {hi_v}] is empty")));
        }
        // Settle any hedge losers that have landed since the last read so
        // their breaker outcomes do not pile up.
        self.drain_read_stragglers(false);
        let (st, vs) = self.view(file, compute)?;
        let mut requests = Vec::new();
        let mut meta = Vec::new();
        for s in 0..self.nodes.len() {
            let replay = vs.plan.replay(s);
            if replay.is_empty() || replay.bytes_between(lo_v, hi_v) == 0 {
                continue;
            }
            let (l_s, r_s) = Self::map_extremities(st, vs, s, lo_v, hi_v)?;
            let rank = self.first_live_rank(s);
            requests.push(Outgoing {
                node: self.map.node_for(s, rank),
                request: Request::Read { file: copy_file_id(file, rank), compute, l_s, r_s },
            });
            meta.push((s, rank, l_s, r_s));
        }
        // Replicated sessions race a hedge against tail-slow primaries;
        // unreplicated ones have nowhere to hedge and keep the plain
        // fan-out.
        let settled: Vec<(usize, Result<Reply, NetError>)> = if self.map.replicas() > 1 {
            let submitted: Vec<Result<ReplySlot, NetError>> = requests
                .into_iter()
                .map(|Outgoing { node, request }| self.submit(node, request))
                .collect();
            let targets = meta.clone();
            submitted
                .into_iter()
                .zip(targets)
                .map(|(slot, (s, rank, l_s, r_s))| {
                    self.collect_hedged(compute, file, s, rank, l_s, r_s, slot)
                })
                .collect()
        } else {
            self.fan_out(requests)
                .into_iter()
                .zip(&meta)
                .map(|((_, reply), &(_, rank, _, _))| (rank, reply))
                .collect()
        };
        let mut buf = vec![0u8; (hi_v - lo_v + 1) as usize];
        for (i, (rank, reply)) in settled.into_iter().enumerate() {
            let (s, _, l_s, r_s) = meta[i];
            let payload = self.read_with_failover(compute, file, s, rank, l_s, r_s, reply)?;
            // Scatter the node's fragment stream back into view positions.
            // A short payload (partial read at the subfile boundary) fills
            // only the leading fragments.
            let (_, vs) = self.view(file, compute)?;
            let mut pos = 0usize;
            vs.plan.replay(s).for_each_between(lo_v, hi_v, |seg| {
                let take = (seg.len() as usize).min(payload.len() - pos);
                if take == 0 {
                    return;
                }
                let a = (seg.l() - lo_v) as usize;
                buf[a..a + take].copy_from_slice(&payload[pos..pos + take]);
                pos += take;
            });
        }
        Ok(buf)
    }

    /// Settles subfile `s`'s primary read with a hedge race (DESIGN.md
    /// §16): wait the p95-based delay for the primary; if it has not
    /// answered by then, issue the same read to the next closed-breaker
    /// replica and take whichever valid answer lands first. Returns the
    /// winning rank with its reply so failover continues from the right
    /// copy. The loser is parked as a read straggler rather than dropped,
    /// so its outcome still reaches the breaker. Duplicate reads are safe:
    /// reads mutate nothing, and the write path is stamp-deduplicated.
    #[allow(clippy::too_many_arguments)]
    fn collect_hedged(
        &mut self,
        compute: u32,
        file: u64,
        s: usize,
        rank: usize,
        l_s: u64,
        r_s: u64,
        slot: Result<ReplySlot, NetError>,
    ) -> (usize, Result<Reply, NetError>) {
        let node = self.map.node_for(s, rank);
        let rx = match slot {
            Ok(rx) => rx,
            Err(e) => {
                self.note_node(node, false);
                return (rank, Err(e));
            }
        };
        let started = Instant::now();
        let delay = self.read_latency.hedge_delay(HEDGE_FLOOR, HEDGE_CEILING);
        match rx.recv_timeout(delay) {
            Ok(reply) => {
                if reply.is_ok() {
                    self.read_latency.record(started.elapsed());
                }
                self.note_reply(node, &reply);
                return (rank, reply);
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                self.respawn(node);
                self.note_node(node, false);
                return (rank, Err(mux_lost(node)));
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
        }
        // The primary is tail-slow: hedge to the next replica on a
        // distinct, live node whose breaker is fully closed (a speculative
        // read must not consume the single half-open probe slot).
        let r = self.map.replicas();
        let hedge = (1..r)
            .map(|step| (rank + step) % r)
            .find(|&k| {
                let n = self.map.node_for(s, k);
                n != node && self.health[n] != NodeHealth::Dead && self.breaker_closed(n)
            })
            .and_then(|k| {
                let n = self.map.node_for(s, k);
                let request = Request::Read { file: copy_file_id(file, k), compute, l_s, r_s };
                self.submit(n, request).ok().map(|slot| (k, n, slot))
            });
        let Some((hedge_rank, hedge_node, hedge_slot)) = hedge else {
            // Nowhere to hedge: block on the primary.
            let reply = match rx.recv() {
                Ok(reply) => reply,
                Err(_) => {
                    self.respawn(node);
                    self.note_node(node, false);
                    return (rank, Err(mux_lost(node)));
                }
            };
            if reply.is_ok() {
                self.read_latency.record(started.elapsed());
            }
            self.note_reply(node, &reply);
            return (rank, reply);
        };
        self.hedged_reads += 1;
        let mut pending = vec![(rank, node, rx), (hedge_rank, hedge_node, hedge_slot)];
        let mut last: Option<(usize, Result<Reply, NetError>)> = None;
        while !pending.is_empty() {
            let mut progressed = false;
            let mut i = 0;
            while i < pending.len() {
                match pending[i].2.try_recv() {
                    Ok(reply) => {
                        progressed = true;
                        let (k, n, _) = pending.remove(i);
                        self.note_reply(n, &reply);
                        if matches!(reply, Ok(Reply::Data { .. })) {
                            self.read_latency.record(started.elapsed());
                            for (_, loser_node, loser_slot) in pending {
                                self.read_stragglers.push((loser_node, loser_slot));
                            }
                            return (k, reply);
                        }
                        last = Some((k, reply));
                    }
                    Err(mpsc::TryRecvError::Empty) => i += 1,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        progressed = true;
                        let (k, n, _) = pending.remove(i);
                        self.respawn(n);
                        self.note_node(n, false);
                        last = Some((k, Err(mux_lost(n))));
                    }
                }
            }
            if !pending.is_empty() && !progressed {
                std::thread::sleep(HEDGE_POLL);
            }
        }
        last.unwrap_or_else(|| {
            (
                rank,
                Err(NetError::Io(std::io::Error::other(format!(
                    "no replica of subfile {s} answered the hedged read"
                )))),
            )
        })
    }

    /// Settles one subfile's read, walking the replica set from
    /// `first_rank` until a copy answers. A restarted daemon is
    /// re-established and retried once per rank; a checksum mismatch
    /// queues that copy for repair and moves to the next rank; an
    /// unreachable node is marked dead and skipped. Errors only when every
    /// replica failed.
    #[allow(clippy::too_many_arguments)]
    fn read_with_failover(
        &mut self,
        compute: u32,
        file: u64,
        s: usize,
        first_rank: usize,
        l_s: u64,
        r_s: u64,
        first: Result<Reply, NetError>,
    ) -> Result<Vec<u8>, NetError> {
        let r = self.map.replicas();
        let mut attempt = Some(first);
        let mut last_err: Option<NetError> = None;
        for step in 0..r {
            let rank = (first_rank + step) % r;
            let node = self.map.node_for(s, rank);
            let request = Request::Read { file: copy_file_id(file, rank), compute, l_s, r_s };
            let reply = match attempt.take() {
                Some(reply) => reply,
                None => {
                    let reply = lock(&self.nodes[node]).call(&request);
                    self.note_reply(node, &reply);
                    reply
                }
            };
            let reply = match reply {
                Err(NetError::Protocol(e))
                    if matches!(e.code, ErrCode::UnknownFile | ErrCode::NoView) =>
                {
                    // The daemon restarted between `set_view` and this
                    // read: re-establish the copy and view from cached
                    // state (which also replays the daemon's journal) and
                    // retry once.
                    match self.reestablish_copy(s, rank, compute, file) {
                        Ok(()) => {
                            let reply = lock(&self.nodes[node]).call(&request);
                            self.note_reply(node, &reply);
                            reply
                        }
                        Err(e) => Err(e),
                    }
                }
                other => other,
            };
            match reply {
                Ok(Reply::Data { payload }) => return Ok(payload),
                Ok(other) => {
                    return Err(NetError::BadReply(format!(
                        "node {node}: expected Data, got {other:?}"
                    )))
                }
                Err(NetError::Protocol(e))
                    if matches!(e.code, ErrCode::ChecksumMismatch | ErrCode::Internal) =>
                {
                    // The stored copy failed verification (or the daemon's
                    // storage is sick): heal from the next replica and
                    // queue this one for repair.
                    self.dirty.insert(DirtyReplica { file, subfile: s, rank, node });
                    last_err = Some(NetError::Protocol(e));
                }
                Err(e @ (NetError::Io(_) | NetError::IdMismatch { .. })) => {
                    self.health[node] = NodeHealth::Dead;
                    last_err = Some(e);
                }
                Err(e @ NetError::Busy { .. }) => {
                    // The daemon shed the read: the node is alive and the
                    // copy intact — just fail over to the next rank.
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            NetError::Io(std::io::Error::other(format!("no replica of subfile {s} answered")))
        }))
    }

    /// Fetches every subfile and reassembles the full file through the
    /// physical mapping functions (verification/diagnostics path). Each
    /// subfile comes from its first live replica with the same failover
    /// semantics as [`read`](Self::read).
    pub fn file_contents(&mut self, file: u64) -> Result<Vec<u8>, NetError> {
        let st = self.file(file)?;
        let len = st.len as usize;
        let physical = st.physical.clone();
        let mut requests = Vec::with_capacity(self.subfiles());
        let mut meta = Vec::with_capacity(self.subfiles());
        for s in 0..self.subfiles() {
            let rank = self.first_live_rank(s);
            requests.push(Outgoing {
                node: self.map.node_for(s, rank),
                request: Request::Fetch { file: copy_file_id(file, rank) },
            });
            meta.push((s, rank));
        }
        let mut out = vec![0u8; len];
        for (i, (_, reply)) in self.fan_out(requests).into_iter().enumerate() {
            let (s, rank) = meta[i];
            let payload = self.fetch_with_failover(file, s, rank, Some(reply))?;
            let m = Mapper::new(&physical, s);
            for (i, byte) in payload.iter().enumerate() {
                let pos = m.unmap(i as u64) as usize;
                if pos < len {
                    out[pos] = *byte;
                }
            }
        }
        Ok(out)
    }

    /// Settles one subfile fetch, walking the replica set from
    /// `first_rank`. A copy the daemon lost (restart with an empty disk)
    /// or that fails its checksum is queued dirty and the next rank is
    /// tried; an unreachable node is marked dead and skipped.
    fn fetch_with_failover(
        &mut self,
        file: u64,
        s: usize,
        first_rank: usize,
        first: Option<Result<Reply, NetError>>,
    ) -> Result<Vec<u8>, NetError> {
        let r = self.map.replicas();
        let mut attempt = first;
        let mut last_err: Option<NetError> = None;
        for step in 0..r {
            let rank = (first_rank + step) % r;
            let node = self.map.node_for(s, rank);
            let request = Request::Fetch { file: copy_file_id(file, rank) };
            let reply = match attempt.take() {
                Some(reply) => reply,
                None => {
                    let reply = lock(&self.nodes[node]).call(&request);
                    self.note_reply(node, &reply);
                    reply
                }
            };
            let reply = match reply {
                Err(NetError::Protocol(e))
                    if matches!(e.code, ErrCode::UnknownFile) && self.files.contains_key(&file) =>
                {
                    // A restarted daemon forgot the copy: re-opening it
                    // replays the journal over the surviving bytes.
                    match self.reopen_copy(s, rank, file) {
                        Ok(()) => {
                            let reply = lock(&self.nodes[node]).call(&request);
                            self.note_reply(node, &reply);
                            reply
                        }
                        Err(e) => Err(e),
                    }
                }
                other => other,
            };
            match reply {
                Ok(Reply::Data { payload }) => return Ok(payload),
                Ok(other) => {
                    return Err(NetError::BadReply(format!(
                        "node {node}: expected Data, got {other:?}"
                    )))
                }
                Err(NetError::Protocol(e))
                    if matches!(e.code, ErrCode::ChecksumMismatch | ErrCode::UnknownFile) =>
                {
                    self.dirty.insert(DirtyReplica { file, subfile: s, rank, node });
                    last_err = Some(NetError::Protocol(e));
                }
                Err(e @ (NetError::Io(_) | NetError::IdMismatch { .. })) => {
                    self.health[node] = NodeHealth::Dead;
                    last_err = Some(e);
                }
                Err(e @ NetError::Busy { .. }) => {
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            NetError::Io(std::io::Error::other(format!("no replica of subfile {s} answered")))
        }))
    }

    /// Fetches one subfile of `file` verbatim, from its first live replica
    /// with read failover. Works on any file the daemons host, not just
    /// ones created by this session (the restart-recovery reopen path
    /// does require a session-created file).
    pub fn subfile(&mut self, file: u64, s: usize) -> Result<Vec<u8>, NetError> {
        if s >= self.nodes.len() {
            return Err(NetError::Usage(format!(
                "subfile {s} out of range for {} I/O nodes",
                self.nodes.len()
            )));
        }
        let rank = self.first_live_rank(s);
        self.fetch_with_failover(file, s, rank, None)
    }

    /// Fetches one specific replica copy of subfile `s` verbatim — no
    /// failover, so tests and the scrub CLI can compare copies
    /// byte for byte.
    pub fn subfile_copy(&mut self, file: u64, s: usize, rank: usize) -> Result<Vec<u8>, NetError> {
        if s >= self.nodes.len() || rank >= self.map.replicas() {
            return Err(NetError::Usage(format!(
                "copy (subfile {s}, rank {rank}) out of range for {} nodes × {} replicas",
                self.nodes.len(),
                self.map.replicas()
            )));
        }
        let node = self.map.node_for(s, rank);
        let request = Request::Fetch { file: copy_file_id(file, rank) };
        let reply = match lock(&self.nodes[node]).call(&request) {
            Err(NetError::Protocol(e))
                if matches!(e.code, ErrCode::UnknownFile) && self.files.contains_key(&file) =>
            {
                self.reopen_copy(s, rank, file)?;
                lock(&self.nodes[node]).call(&request)?
            }
            other => other?,
        };
        match reply {
            Reply::Data { payload } => Ok(payload),
            other => Err(NetError::BadReply(format!("expected Data, got {other:?}"))),
        }
    }

    /// Forces every replica copy of `file` to stable storage. Works on any
    /// file the daemons host, not just ones created by this session. A
    /// failed flush leaves the daemon's journal intact, so flushing is
    /// retry-safe: transient storage failures ([`ErrCode::Internal`]) are
    /// absorbed with a few immediate per-copy retries before surfacing.
    /// Quorum-write stragglers are drained (blocking) first, so a
    /// successful flush means every non-dirty replica is durable; a copy
    /// that still fails is queued dirty, and the flush errors only when
    /// some subfile flushed no copy at all.
    pub fn flush(&mut self, file: u64) -> Result<(), NetError> {
        self.drain_stragglers(true);
        let mut requests = Vec::with_capacity(self.subfiles() * self.map.replicas());
        let mut meta = Vec::with_capacity(requests.capacity());
        for s in 0..self.subfiles() {
            for rank in 0..self.map.replicas() {
                requests.push(Outgoing {
                    node: self.map.node_for(s, rank),
                    request: Request::Flush { file: copy_file_id(file, rank) },
                });
                meta.push((s, rank));
            }
        }
        let mut flushed = vec![0usize; self.subfiles()];
        let mut first_err: Option<NetError> = None;
        for (i, (node, first)) in self.fan_out(requests).into_iter().enumerate() {
            let (s, rank) = meta[i];
            match self.settle_flush(file, s, rank, first) {
                Ok(()) => flushed[s] += 1,
                Err(e @ (NetError::Usage(_) | NetError::BadReply(_))) => return Err(e),
                Err(e) => {
                    if matches!(e, NetError::Io(_) | NetError::IdMismatch { .. }) {
                        self.health[node] = NodeHealth::Dead;
                    }
                    self.dirty.insert(DirtyReplica { file, subfile: s, rank, node });
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if flushed.iter().all(|&n| n > 0) {
            Ok(())
        } else {
            Err(first_err.unwrap_or_else(|| {
                NetError::Io(std::io::Error::other("no replica flushed".to_string()))
            }))
        }
    }

    /// Retry loop for one copy's flush: absorbs transient `Internal`
    /// failures and restart-induced `UnknownFile` (re-open replays the
    /// journal, which the flush then checkpoints).
    fn settle_flush(
        &mut self,
        file: u64,
        s: usize,
        rank: usize,
        first: Result<Reply, NetError>,
    ) -> Result<(), NetError> {
        let node = self.map.node_for(s, rank);
        let request = Request::Flush { file: copy_file_id(file, rank) };
        let mut reply = first;
        let mut tries = 0;
        // The shared backoff schedule, seeded per (session, node, rank) so
        // concurrent sessions flushing the same daemons desynchronize.
        let mut backoff = Backoff::new(
            std::time::Duration::from_millis(5),
            std::time::Duration::from_millis(20),
            self.session_id ^ ((node as u64) << 8) ^ rank as u64,
        );
        loop {
            match reply {
                Ok(Reply::Ok) => return Ok(()),
                Ok(other) => {
                    return Err(NetError::BadReply(format!(
                        "node {node}: expected Ok, got {other:?}"
                    )))
                }
                Err(NetError::Protocol(ref e))
                    if matches!(e.code, ErrCode::Internal) && tries < 3 =>
                {
                    tries += 1;
                    backoff.sleep();
                    reply = lock(&self.nodes[node]).call(&request);
                }
                Err(NetError::Protocol(ref e))
                    if matches!(e.code, ErrCode::UnknownFile)
                        && self.files.contains_key(&file)
                        && tries < 3 =>
                {
                    tries += 1;
                    self.reopen_copy(s, rank, file)?;
                    reply = lock(&self.nodes[node]).call(&request);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Per-subfile statistics for `file`, one entry per I/O node. Works on
    /// any file the daemons host, not just ones created by this session.
    pub fn stat(&mut self, file: u64) -> Result<Vec<StatInfo>, NetError> {
        let requests = (0..self.nodes.len())
            .map(|s| Outgoing { node: s, request: Request::Stat { file } })
            .collect();
        let mut out = vec![StatInfo::default(); self.nodes.len()];
        for (node, reply) in self.fan_out(requests) {
            let reply = match reply {
                Err(NetError::Protocol(e))
                    if matches!(e.code, ErrCode::UnknownFile) && self.files.contains_key(&file) =>
                {
                    self.reopen_copy(node, 0, file)?;
                    lock(&self.nodes[node]).call(&Request::Stat { file })?
                }
                other => other?,
            };
            match reply {
                Reply::Stat(s) => out[node] = s,
                other => {
                    return Err(NetError::BadReply(format!(
                        "node {node}: expected Stat, got {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Walks every replica set of `file`, majority-votes the winning
    /// contents by CRC32C, and re-clones lost, corrupt, or divergent
    /// copies from the winner — the scrub/repair loop. Returns what was
    /// found and fixed; repaired copies leave the dirty queue.
    pub fn scrub(&mut self, file: u64) -> Result<ScrubReport, NetError> {
        self.scrub_pass(file, true)
    }

    /// [`scrub`](Self::scrub) without the repair phase: probes and votes
    /// only, counting would-be repairs as `failed` so
    /// [`ScrubReport::fully_redundant`] doubles as a verification gate.
    pub fn scrub_verify(&mut self, file: u64) -> Result<ScrubReport, NetError> {
        self.scrub_pass(file, false)
    }

    fn scrub_pass(&mut self, file: u64, repair: bool) -> Result<ScrubReport, NetError> {
        // Outstanding quorum stragglers must land (or be recorded dirty)
        // before a scrub verdict means anything.
        self.drain_stragglers(true);
        let r = self.map.replicas();
        let mut report = ScrubReport::default();
        for s in 0..self.subfiles() {
            let mut health = Vec::with_capacity(r);
            let mut payloads: Vec<Option<Vec<u8>>> = Vec::with_capacity(r);
            for rank in 0..r {
                let (h, p) = self.probe_copy(file, s, rank)?;
                health.push(h);
                payloads.push(p);
            }
            // Unreachable copies could not be vouched for this pass, even
            // when the verdict is Healthy (the reachable copies agree).
            report.skipped +=
                health.iter().filter(|h| matches!(h, CopyHealth::Unreachable)).count();
            let verdict = plan_subfile(&health);
            match &verdict {
                ScrubVerdict::Healthy => {}
                ScrubVerdict::Lost => report.lost.push(s),
                ScrubVerdict::Repair { source_rank, repair_ranks, skipped_ranks: _ } => {
                    if repair {
                        let source = payloads[*source_rank].take().ok_or_else(|| {
                            NetError::BadReply("scrub lost its source copy's bytes".to_string())
                        })?;
                        for &rank in repair_ranks {
                            let node = self.map.node_for(s, rank);
                            match self.repair_copy(file, s, rank, &source) {
                                Ok(()) => {
                                    report.repaired += 1;
                                    self.dirty.remove(&DirtyReplica {
                                        file,
                                        subfile: s,
                                        rank,
                                        node,
                                    });
                                }
                                Err(NetError::Io(_) | NetError::IdMismatch { .. }) => {
                                    report.failed += 1;
                                    self.health[node] = NodeHealth::Dead;
                                    self.dirty.insert(DirtyReplica {
                                        file,
                                        subfile: s,
                                        rank,
                                        node,
                                    });
                                }
                                Err(e) => return Err(e),
                            }
                        }
                    } else {
                        report.failed += repair_ranks.len();
                    }
                }
            }
            report.verdicts.push((s, verdict));
        }
        Ok(report)
    }

    /// Probes one replica copy's health for the scrubber: fetch it whole
    /// (the daemon verifies its stored checksums on the way out) and hash
    /// the contents, classifying failures.
    fn probe_copy(
        &mut self,
        file: u64,
        s: usize,
        rank: usize,
    ) -> Result<(CopyHealth, Option<Vec<u8>>), NetError> {
        let node = self.map.node_for(s, rank);
        match lock(&self.nodes[node]).call(&Request::Fetch { file: copy_file_id(file, rank) }) {
            Ok(Reply::Data { payload }) => {
                let crc = crc32c(&payload);
                Ok((CopyHealth::Ok { crc, len: payload.len() as u64 }, Some(payload)))
            }
            Ok(other) => {
                Err(NetError::BadReply(format!("node {node}: expected Data, got {other:?}")))
            }
            Err(NetError::Protocol(e)) if matches!(e.code, ErrCode::UnknownFile) => {
                Ok((CopyHealth::Missing, None))
            }
            Err(NetError::Protocol(e)) if matches!(e.code, ErrCode::ChecksumMismatch) => {
                Ok((CopyHealth::Corrupt, None))
            }
            Err(NetError::Io(_) | NetError::IdMismatch { .. }) => {
                self.health[node] = NodeHealth::Dead;
                Ok((CopyHealth::Unreachable, None))
            }
            Err(e) => Err(e),
        }
    }

    /// Re-clones one replica copy from `bytes`: open the copy at the
    /// source's length, compile the identity view through the plan engine
    /// (a redistribution whose view and physical partitions coincide), and
    /// stream the bytes through the regular stamped write path — large
    /// copies ride the chunked pipeline — then flush.
    fn repair_copy(
        &mut self,
        file: u64,
        s: usize,
        rank: usize,
        bytes: &[u8],
    ) -> Result<(), NetError> {
        let node = self.map.node_for(s, rank);
        let copy = copy_file_id(file, rank);
        let len = bytes.len() as u64;
        lock(&self.nodes[node]).expect_ok(&Request::Open {
            file: copy,
            subfile: s as u32,
            len,
            tenant: self.tenant,
        })?;
        if len == 0 {
            return Ok(());
        }
        let falls = Falls::new(0, len - 1, len, 1).map_err(parafile::Error::from)?;
        let identity = Partition::new(
            0,
            PartitionPattern::new(vec![NestedSet::singleton(NestedFalls::leaf(falls))])?,
        );
        let plan = PlanEngine::global().compile_view(&identity, 0, &identity)?;
        let access = plan.access(0);
        let proj_set: Vec<RawFalls> =
            access.proj_sub.set.families().iter().map(RawFalls::from_nested).collect();
        let session = self.session_id;
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut client = lock(&self.nodes[node]);
        client.expect_ok(&Request::SetView {
            file: copy,
            compute: SCRUB_COMPUTE,
            element: 0,
            view: RawPattern::from_partition(&identity),
            proj_set,
            proj_period: access.proj_sub.period,
        })?;
        match client.call(&Request::Write {
            file: copy,
            compute: SCRUB_COMPUTE,
            l_s: 0,
            r_s: len - 1,
            session,
            seq,
            payload: bytes.to_vec(),
        })? {
            Reply::WriteOk { .. } => {}
            other => return Err(NetError::BadReply(format!("expected WriteOk, got {other:?}"))),
        }
        client.expect_ok(&Request::Flush { file: copy })
    }

    /// Asks every daemon to shut down. Errors on unreachable daemons are
    /// reported but do not stop the sweep.
    pub fn shutdown_all(&mut self) -> Result<(), NetError> {
        let mut first_err = None;
        for node in &self.nodes {
            if let Err(e) = lock(node).call(&Request::Shutdown) {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl Drop for Session {
    /// A session abandoned mid-quorum-write still owes the cluster the
    /// truth about its stragglers: block until every outstanding replica
    /// ack lands or fails, so a write the caller saw succeed is actually
    /// on all its copies — or recorded dirty — before the connections
    /// close. A later session's scrub then sees an honest cluster instead
    /// of silently divergent replicas. The mux driver is still alive here
    /// (fields drop after this body), so the blocking drain terminates on
    /// the transport's own timeouts. A pooled session then *returns its
    /// lease* rather than closing the shared driver — sibling sessions on
    /// the same sockets keep working, and the warm connections survive for
    /// the next `connect_pooled`.
    fn drop(&mut self) {
        self.drain_stragglers(true);
    }
}

/// Spawns `io_nodes` loopback daemons on OS-assigned TCP ports, all over
/// `backend`, returning their handles and client addresses (daemon order =
/// subfile order).
pub fn spawn_loopback(
    io_nodes: usize,
    backend: StorageBackend,
) -> std::io::Result<(Vec<DaemonHandle>, Vec<String>)> {
    let mut handles = Vec::with_capacity(io_nodes);
    let mut addrs = Vec::with_capacity(io_nodes);
    for _ in 0..io_nodes {
        let config = DaemonConfig { backend: backend.clone(), ..DaemonConfig::default() };
        let handle = serve("127.0.0.1:0", config)?;
        addrs.push(handle.addr().to_string());
        handles.push(handle);
    }
    Ok((handles, addrs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{chaos_proxy, FaultPlan};
    use arraydist::matrix::MatrixLayout;

    /// 8×8 matrix, column-block physical over 2 nodes, row-block view —
    /// element 0's full view interval `[0, 31]` intersects both subfiles.
    fn two_node_session() -> (Vec<DaemonHandle>, Session) {
        let physical = MatrixLayout::ColumnBlocks.partition(8, 8, 1, 2);
        let logical = MatrixLayout::RowBlocks.partition(8, 8, 1, 2);
        let (handles, addrs) =
            spawn_loopback(2, StorageBackend::Memory).expect("spawn loopback daemons");
        let mut session = Session::connect(&addrs);
        session.create_file(1, physical, 64).expect("create file");
        session.set_view(0, 1, &logical, 0).expect("set view");
        (handles, session)
    }

    #[test]
    fn poisoned_node_mutex_does_not_wedge_the_session() {
        let (mut handles, mut session) = two_node_session();
        session.write(0, 1, 0, 31, &[0x11; 32]).expect("write before poisoning");
        // Poison node 0's client mutex the way a panicking caller would.
        let client = Arc::clone(&session.nodes[0]);
        let _ = std::thread::spawn(move || {
            let _guard = client.lock().unwrap();
            panic!("poison the client mutex");
        })
        .join();
        assert!(session.nodes[0].is_poisoned(), "the mutex must actually be poisoned");
        session.write(0, 1, 0, 31, &[0x22; 32]).expect("write after poisoning still works");
        assert_eq!(session.read(0, 1, 0, 31).expect("read back"), vec![0x22; 32]);
        drop(session);
        for h in &mut handles {
            h.stop();
        }
    }

    #[test]
    fn killed_transport_degrades_to_unreachable_then_recovers() {
        let (mut handles, mut session) = two_node_session();
        // Arm node 0's transport to kill its next request: the write must
        // degrade that node to Unreachable instead of failing the call.
        session.mux.arm_kill(0);
        let report = session.write_report(0, 1, 0, 31, &[0x33; 32]).expect("degraded write");
        assert_eq!(report.unreachable(), vec![0]);
        assert!(
            report
                .outcomes
                .iter()
                .any(|&(n, o)| n == 1 && matches!(o, SegmentOutcome::Applied { .. })),
            "node 1 must still apply its segments: {report:?}"
        );
        // The connection was reset on the spot; a probe revives the node
        // and the next write goes through end to end.
        assert!(session.probe().iter().all(|h| matches!(h, NodeHealth::Alive { .. })));
        let report = session.write_report(0, 1, 0, 31, &[0x44; 32]).expect("write after respawn");
        assert!(report.fully_applied(), "{report:?}");
        assert_eq!(session.read(0, 1, 0, 31).expect("read back"), vec![0x44; 32]);
        drop(session);
        for h in &mut handles {
            h.stop();
        }
    }

    #[test]
    fn transport_handoff_survives_interleaved_kills_under_stress() {
        // Loom substitute (see CI's nightly interleaving jobs): shake the
        // submit → mux → collect → reset handoff by arming the transport
        // kill hook at shifting points across many iterations. Every
        // iteration must terminate (no deadlock, no hang on an abandoned
        // reply slot) and degrade — never panic — the session.
        let (mut handles, mut session) = two_node_session();
        for i in 0..48u64 {
            if i % 3 == 0 {
                session.mux.arm_kill((i as usize / 3) % 2);
            }
            let data = vec![i as u8; 32];
            match session.write_report(0, 1, 0, 31, &data) {
                Ok(report) => {
                    for (_, outcome) in &report.outcomes {
                        // Any outcome is legal under injected panics;
                        // reaching here means the handoff terminated.
                        let _ = outcome.written();
                    }
                }
                Err(e) => panic!("degraded write must not error: {e}"),
            }
            if i % 7 == 0 {
                // Revive fail-fast nodes so later iterations exercise the
                // full dispatch path again, not the dead-node shortcut.
                session.probe();
            }
        }
        // After the storm the session must still work end to end. The
        // first probe may absorb a still-armed kill (the hook fires on
        // the node's next request, whatever it is); the second one runs
        // on a clean transport and revives everything.
        session.probe();
        session.probe();
        let report = session.write_report(0, 1, 0, 31, &[0x77; 32]).expect("final write");
        assert!(report.fully_applied(), "{report:?}");
        assert_eq!(session.read(0, 1, 0, 31).expect("read back"), vec![0x77; 32]);
        drop(session);
        for h in &mut handles {
            h.stop();
        }
    }

    /// 9×9 matrix over 3 nodes with R = 2: column-block physical,
    /// row-block view.
    fn replicated_session() -> (Vec<DaemonHandle>, Session) {
        let physical = MatrixLayout::ColumnBlocks.partition(9, 9, 1, 3);
        let logical = MatrixLayout::RowBlocks.partition(9, 9, 1, 3);
        let (handles, addrs) =
            spawn_loopback(3, StorageBackend::Memory).expect("spawn loopback daemons");
        let mut session = Session::connect_replicated(&addrs, 2).expect("R=2 over 3 nodes");
        session.create_file(5, physical, 81).expect("create file");
        session.set_view(0, 5, &logical, 0).expect("set view");
        (handles, session)
    }

    #[test]
    fn replica_copies_agree_after_quorum_writes() {
        let (mut handles, mut session) = replicated_session();
        let data: Vec<u8> = (0..27u8).collect();
        let report = session.write_report(0, 5, 0, 26, &data).expect("replicated write");
        assert!(report.fully_applied(), "{report:?}");
        session.flush(5).expect("flush both replicas");
        assert!(session.dirty_replicas().is_empty(), "healthy cluster stays clean");
        assert_eq!(session.read(0, 5, 0, 26).expect("read back"), data);
        // Every subfile's two copies are byte-identical.
        for s in 0..3 {
            let rank0 = session.subfile_copy(5, s, 0).expect("rank 0 copy");
            let rank1 = session.subfile_copy(5, s, 1).expect("rank 1 copy");
            assert_eq!(rank0, rank1, "subfile {s} copies diverge");
        }
        let scrub = session.scrub_verify(5).expect("verify pass");
        assert!(scrub.fully_redundant(), "{scrub:?}");
        drop(session);
        for h in &mut handles {
            h.stop();
        }
    }

    #[test]
    fn replicated_session_survives_permanent_node_loss() {
        let (mut handles, mut session) = replicated_session();
        // One view element per compute node covers the whole file.
        let logical = MatrixLayout::RowBlocks.partition(9, 9, 1, 3);
        session.set_view(1, 5, &logical, 1).expect("set view 1");
        session.set_view(2, 5, &logical, 2).expect("set view 2");
        let before: Vec<u8> = (0..81u8).map(|i| i ^ 0x5A).collect();
        for c in 0..3u32 {
            let part = &before[c as usize * 27..(c as usize + 1) * 27];
            session.write(c, 5, 0, 26, part).expect("write while healthy");
        }
        // Permanently kill node 1 and let the probe mark it dead so the
        // session fails fast instead of paying the retry schedule.
        handles[1].stop();
        session.probe();
        assert_eq!(session.health()[1], NodeHealth::Dead);
        // Every subfile keeps one live replica (rank sets {s, s+1 mod 3}),
        // so degraded writes still fully apply...
        let after: Vec<u8> = (0..81u8).map(|i| i.wrapping_mul(3)).collect();
        for c in 0..3u32 {
            let part = &after[c as usize * 27..(c as usize + 1) * 27];
            let report = session.write_report(c, 5, 0, 26, part).expect("degraded write");
            assert!(report.fully_applied(), "{report:?}");
        }
        // ...the dead node's copies are queued for repair...
        let dirty = session.dirty_replicas();
        assert!(
            dirty.iter().any(|d| d.node == 1),
            "copies on the dead node must be dirty: {dirty:?}"
        );
        // ...and reads fail over to the surviving replicas, byte-identical.
        for c in 0..3u32 {
            let part = &after[c as usize * 27..(c as usize + 1) * 27];
            assert_eq!(session.read(c, 5, 0, 26).expect("read after loss"), part);
        }
        assert_eq!(session.file_contents(5).expect("reassemble after loss"), after);
        // A scrub pass can only skip the unreachable copies, not repair.
        let scrub = session.scrub(5).expect("scrub with a dead node");
        assert!(!scrub.fully_redundant(), "{scrub:?}");
        assert!(scrub.lost.is_empty(), "no subfile lost: {scrub:?}");
        drop(session);
        for h in &mut handles {
            h.stop();
        }
    }

    #[test]
    fn scrub_reclones_divergent_copy_from_majority() {
        let (mut handles, mut session) = replicated_session();
        let data: Vec<u8> = (0..81u8).collect();
        session.write(0, 5, 0, 80, &data).expect("write");
        session.flush(5).expect("flush");
        // Diverge subfile 2's rank-1 copy by writing garbage straight to
        // it (repair_copy doubles as a raw copy writer here).
        let garbage = vec![0xEE; 27];
        session.repair_copy(5, 2, 1, &garbage).expect("plant divergent copy");
        assert_eq!(session.subfile_copy(5, 2, 1).expect("divergent copy"), garbage);
        // The scrub votes: rank 0 wins the 1-vs-1 tie (lowest rank), and
        // rank 1 is re-cloned from it.
        let report = session.scrub(5).expect("scrub");
        assert_eq!(report.repaired, 1, "{report:?}");
        assert!(report.fully_redundant(), "{report:?}");
        let rank0 = session.subfile_copy(5, 2, 0).expect("source copy");
        assert_eq!(session.subfile_copy(5, 2, 1).expect("healed copy"), rank0);
        // A second pass finds nothing to do.
        let clean = session.scrub(5).expect("second scrub");
        assert_eq!(clean.repaired, 0);
        assert!(clean.verdicts.iter().all(|(_, v)| *v == ScrubVerdict::Healthy), "{clean:?}");
        drop(session);
        for h in &mut handles {
            h.stop();
        }
    }

    #[test]
    fn write_batch_pipelines_and_matches_sequential_writes() {
        // 4 nodes, row-block view over column-block physical: every 16-byte
        // row write scatters 4 bytes to each of the 4 nodes, and the batch
        // queues 4 such ops back to back per node connection.
        let physical = MatrixLayout::ColumnBlocks.partition(16, 16, 1, 4);
        let logical = MatrixLayout::RowBlocks.partition(16, 16, 1, 4);
        let (mut handles, addrs) =
            spawn_loopback(4, StorageBackend::Memory).expect("spawn loopback daemons");
        let mut session = Session::connect(&addrs);
        session.create_file(9, physical, 256).expect("create file");
        session.set_view(0, 9, &logical, 0).expect("set view");
        let rows: Vec<(u64, u64, Vec<u8>)> =
            (0..4u64).map(|i| (i * 16, i * 16 + 15, vec![0x50 + i as u8; 16])).collect();
        let ops: Vec<BatchWrite<'_>> =
            rows.iter().map(|(lo, hi, d)| BatchWrite { lo_v: *lo, hi_v: *hi, data: d }).collect();
        let reports = session.write_batch(0, 9, &ops).expect("batched write");
        assert_eq!(reports.len(), 4);
        assert!(reports.iter().all(RedistReport::fully_applied), "{reports:?}");
        for (lo, hi, d) in &rows {
            assert_eq!(&session.read(0, 9, *lo, *hi).expect("read row back"), d);
        }
        drop(session);
        for h in &mut handles {
            h.stop();
        }
    }

    #[test]
    fn an_expired_deadline_fails_the_session_fast() {
        let (mut handles, mut session) = two_node_session();
        session.write(0, 1, 0, 31, &[0x11; 32]).expect("write without deadline");
        // An already-expired deadline propagates to every node client and
        // fails before touching the wire — and without feeding the
        // breakers (expiry says nothing about node health).
        session.set_deadline(Deadline::within(Duration::ZERO));
        let started = Instant::now();
        let err = session.read(0, 1, 0, 31).expect_err("expired deadline must fail");
        assert!(
            matches!(&err, NetError::Protocol(e) if e.code == ErrCode::DeadlineExceeded),
            "expected DeadlineExceeded, got {err}"
        );
        assert!(started.elapsed() < Duration::from_millis(250), "must fail fast");
        assert!(
            (0..2).all(|n| session.breaker_state(n) == BreakerState::Closed),
            "deadline expiry must not feed the breakers"
        );
        // Lifting the deadline restores service.
        session.set_deadline(Deadline::none());
        assert_eq!(session.read(0, 1, 0, 31).expect("read after lifting"), vec![0x11; 32]);
        drop(session);
        for h in &mut handles {
            h.stop();
        }
    }

    #[test]
    fn busy_shedding_trips_the_breaker_and_writes_fail_fast() {
        // A daemon whose journal watermark sheds every write after the
        // first until a flush checkpoints the backlog. The journal only
        // runs on file-backed stores, so this daemon gets a scratch dir.
        let dir = std::env::temp_dir().join(format!("pf_session_breaker_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        let config = DaemonConfig {
            backend: StorageBackend::Directory(dir.clone()),
            journal_watermark: Some(1),
            ..DaemonConfig::default()
        };
        let handle = serve("127.0.0.1:0", config).expect("spawn shedding daemon");
        let addrs = vec![handle.addr().to_string()];
        let physical = MatrixLayout::ColumnBlocks.partition(8, 4, 1, 1);
        let logical = MatrixLayout::RowBlocks.partition(8, 4, 1, 1);
        let mut session = Session::connect(&addrs);
        session.create_file(3, physical, 32).expect("create file");
        session.set_view(0, 3, &logical, 0).expect("set view");
        session.write(0, 3, 0, 31, &[0xA0; 32]).expect("first write admitted");
        // Every further write is shed with `Busy`; the failures trip the
        // node's breaker.
        let mut tripped = false;
        for _ in 0..BREAKER_THRESHOLD + 2 {
            let report = session.write_report(0, 3, 0, 31, &[0xA1; 32]).expect("degraded write");
            assert!(!report.fully_applied(), "the daemon must shed this write: {report:?}");
            if session.breaker_state(0) == BreakerState::Open {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "consecutive Busy sheds must open the breaker");
        // An open breaker sheds client-side: the copy is queued dirty
        // without a wire round trip.
        let report = session.write_report(0, 3, 0, 31, &[0xA2; 32]).expect("pre-skipped write");
        assert!(!report.fully_applied(), "{report:?}");
        assert!(!session.dirty_replicas().is_empty(), "shed copies must be queued dirty");
        // Checkpointing the journal lifts the watermark, and the
        // successful flush re-closes the breaker.
        session.flush(3).expect("flush drains the backlog");
        assert_eq!(session.breaker_state(0), BreakerState::Closed);
        let report = session.write_report(0, 3, 0, 31, &[0xA3; 32]).expect("write after flush");
        assert!(report.fully_applied(), "{report:?}");
        assert_eq!(session.read(0, 3, 0, 31).expect("read back"), vec![0xA3; 32]);
        drop(session);
        let mut handle = handle;
        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hedged_read_beats_a_tail_slow_replica() {
        // 3 daemons, R = 2, with node 0 behind a proxy that delays every
        // frame: subfile 0's primary read is tail-slow, so the session
        // hedges it to the rank-1 copy on a fast node and the read
        // completes far under the injected delay.
        let delay_ms = 250u64;
        let physical = MatrixLayout::ColumnBlocks.partition(9, 9, 1, 3);
        let logical = MatrixLayout::RowBlocks.partition(9, 9, 1, 3);
        let (mut handles, mut addrs) =
            spawn_loopback(3, StorageBackend::Memory).expect("spawn loopback daemons");
        let mut plan = FaultPlan::none();
        plan.delay = Some((1, delay_ms));
        let mut proxy = chaos_proxy("127.0.0.1:0", &addrs[0], plan).expect("spawn delaying proxy");
        addrs[0] = proxy.addr().to_string();
        let mut session = Session::connect_replicated(&addrs, 2).expect("R=2 over 3 nodes");
        session.create_file(5, physical, 81).expect("create file");
        session.set_view(0, 5, &logical, 0).expect("set view");
        let data: Vec<u8> = (0..27u8).collect();
        session.write(0, 5, 0, 26, &data).expect("replicated write");
        let started = Instant::now();
        assert_eq!(session.read(0, 5, 0, 26).expect("hedged read"), data);
        let elapsed = started.elapsed();
        assert!(session.hedged_reads() >= 1, "the slow primary must trigger a hedge");
        assert!(
            elapsed < Duration::from_millis(delay_ms - 50),
            "hedge must beat the {delay_ms} ms injected delay, took {elapsed:?}"
        );
        drop(session);
        proxy.stop();
        for h in &mut handles {
            h.stop();
        }
    }

    #[test]
    fn dropping_a_session_drains_quorum_stragglers() {
        // R = 3 over 3 nodes with node 0 behind a delaying proxy: every
        // quorum write returns at W = 2 acks with the node-0 ack still in
        // flight. Dropping the session mid-stream must drain those
        // stragglers — block until they land — so the abandoned write is
        // actually on all three copies before the connections close.
        let physical = MatrixLayout::ColumnBlocks.partition(9, 9, 1, 3);
        let logical = MatrixLayout::RowBlocks.partition(9, 9, 1, 3);
        let (mut handles, mut addrs) =
            spawn_loopback(3, StorageBackend::Memory).expect("spawn loopback daemons");
        let mut plan = FaultPlan::none();
        plan.delay = Some((1, 150));
        let mut proxy = chaos_proxy("127.0.0.1:0", &addrs[0], plan).expect("spawn delaying proxy");
        let slow_direct = handles[0].addr().to_string();
        addrs[0] = proxy.addr().to_string();
        let mut session = Session::connect_replicated(&addrs, 3).expect("R=3 over 3 nodes");
        session.create_file(7, physical.clone(), 81).expect("create file");
        session.set_view(0, 7, &logical, 0).expect("set view");
        let data: Vec<u8> = (0..27u8).map(|i| i ^ 0x3C).collect();
        let report = session.write_report(0, 7, 0, 26, &data).expect("quorum write");
        assert!(report.fully_applied(), "{report:?}");
        assert!(
            !session.stragglers.is_empty(),
            "the delayed node's acks must still be in flight at drop time"
        );
        drop(session);
        // The drop blocked until the slow acks landed. Subfile 1's rank-2
        // copy lives on the slow node (node (1+2) % 3 = 0); compare it —
        // fetched directly, no proxy, no failover — against the rank-0
        // copy on fast node 1. Without the drain the slow copy could still
        // be missing the write here.
        let fetch = |addr: &str, wire_id: u64| -> Vec<u8> {
            let mut c = NodeClient::new(addr);
            match c.call(&Request::Fetch { file: wire_id }).expect("fetch copy") {
                Reply::Data { payload } => payload,
                other => panic!("expected Data, got {other:?}"),
            }
        };
        let slow_copy = fetch(&slow_direct, copy_file_id(7, 2));
        let fast_copy = fetch(handles[1].addr(), copy_file_id(7, 0));
        assert_eq!(slow_copy, fast_copy, "subfile 1's copies must agree after the drop");
        proxy.stop();
        for h in &mut handles {
            h.stop();
        }
    }

    #[test]
    fn pooled_siblings_survive_a_session_drop() {
        // Two pooled sessions lease the same warm driver. Dropping one
        // must return its lease — not close the shared sockets — so the
        // sibling keeps working and a later lease starts warm.
        let (mut handles, addrs) =
            spawn_loopback(2, StorageBackend::Memory).expect("spawn loopback daemons");
        let physical = MatrixLayout::ColumnBlocks.partition(8, 8, 1, 2);
        let logical = MatrixLayout::RowBlocks.partition(8, 8, 1, 2);

        let mut a = Session::connect_pooled(&addrs);
        let mut b = Session::connect_pooled(&addrs);
        assert!(a.mux.is_pooled() && b.mux.is_pooled());
        a.create_file(1, physical.clone(), 64).expect("create file (a)");
        a.set_view(0, 1, &logical, 0).expect("set view (a)");
        b.create_file(2, physical.clone(), 64).expect("create file (b)");
        b.set_view(0, 2, &logical, 0).expect("set view (b)");
        a.write(0, 1, 0, 31, &[0xA1; 32]).expect("write via a");
        b.write(0, 2, 0, 31, &[0xB2; 32]).expect("write via b");

        // The bugfix under test: this drop used to tear the mux (and its
        // connections) down under the sibling.
        drop(a);

        assert!(b.mux.alive(), "shared driver must outlive a sibling's drop");
        assert_eq!(b.read(0, 2, 0, 31).expect("sibling read after drop"), vec![0xB2; 32]);
        b.write(0, 2, 0, 31, &[0xC3; 32]).expect("sibling write after drop");
        assert_eq!(b.read(0, 2, 0, 31).expect("read back"), vec![0xC3; 32]);

        // A fresh lease reuses the still-warm driver and sees a's file.
        let mut c = Session::connect_pooled(&addrs);
        c.create_file(3, physical, 64).expect("create file (c)");
        c.set_view(0, 3, &logical, 0).expect("set view (c)");
        c.write(0, 3, 0, 31, &[0xD4; 32]).expect("write via fresh lease");
        assert_eq!(c.read(0, 3, 0, 31).expect("read via fresh lease"), vec![0xD4; 32]);

        drop(b);
        drop(c);
        for h in &mut handles {
            h.stop();
        }
    }

    #[test]
    fn pooled_sessions_are_byte_identical_to_dedicated_ones() {
        // The pool changes who owns the sockets, never what travels over
        // them: the same op sequence through pooled leases and through
        // private drivers must produce identical bytes.
        let (mut handles, addrs) =
            spawn_loopback(2, StorageBackend::Memory).expect("spawn loopback daemons");
        let physical = MatrixLayout::ColumnBlocks.partition(8, 8, 1, 2);
        let logical = MatrixLayout::RowBlocks.partition(8, 8, 1, 2);

        let run = |session: &mut Session, file: u64| -> Vec<Vec<u8>> {
            session.create_file(file, physical.clone(), 64).expect("create file");
            session.set_view(0, file, &logical, 0).expect("set view");
            let mut reads = Vec::new();
            for round in 0..4u8 {
                let data: Vec<u8> = (0..32u8).map(|i| i.wrapping_mul(7) ^ round).collect();
                session.write(0, file, 0, 31, &data).expect("write");
                reads.push(session.read(0, file, 0, 31).expect("read"));
            }
            reads
        };

        let mut dedicated = Session::connect(&addrs);
        let want = run(&mut dedicated, 10);
        drop(dedicated);

        // Several concurrent leases on one driver, each with its own file.
        let mut pooled: Vec<Session> = (0..4).map(|_| Session::connect_pooled(&addrs)).collect();
        for (i, s) in pooled.iter_mut().enumerate() {
            let got = run(s, 20 + i as u64);
            assert_eq!(got, want, "pooled lease {i} diverged from the dedicated session");
        }
        pooled.clear();
        for h in &mut handles {
            h.stop();
        }
    }
}
