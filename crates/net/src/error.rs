//! Typed errors: wire-level protocol error codes (sent inside `Error`
//! replies) and the client/server library error type wrapping them.

use std::fmt;

/// Stable protocol error codes carried by `Error` replies.
///
/// The daemon never closes a connection without first answering the
/// offending request with one of these (when a request id could still be
/// parsed); malformed framing that destroys synchronization is answered
/// with request id 0 and the connection is then closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrCode {
    /// The frame's version byte is not a protocol version this daemon
    /// speaks.
    UnsupportedVersion,
    /// The opcode byte does not name a known request.
    UnknownOp,
    /// The payload could not be decoded (truncated, trailing garbage,
    /// structurally invalid FALLS trees, over-deep nesting, …).
    Malformed,
    /// The frame length prefix exceeds the daemon's frame budget.
    FrameTooLarge,
    /// An operation referenced a file this daemon does not host.
    UnknownFile,
    /// `Open` for an existing file with a different length.
    FileMismatch,
    /// `Write`/`Read` with no view registered for the requesting compute
    /// node.
    NoView,
    /// A `SetView` pattern was rejected by the `parafile-audit` verifier;
    /// the reply carries the PA diagnostic codes.
    PatternRejected,
    /// An interval with `l > r` or otherwise unusable bounds.
    BadRange,
    /// A `Write` payload whose size does not match the projected segments
    /// of the requested interval.
    SizeMismatch,
    /// The daemon is shutting down and no longer accepts work.
    ShuttingDown,
    /// An internal storage failure (I/O error on a file-backed store).
    Internal,
    /// Stored data failed its CRC32C verification; the replica should be
    /// read from another copy and queued for repair.
    ChecksumMismatch,
    /// The request's propagated deadline budget was already spent when the
    /// daemon was about to execute it; nothing was applied (protocol ≥ 5).
    DeadlineExceeded,
}

impl ErrCode {
    /// The stable numeric identifier put on the wire.
    #[must_use]
    pub fn as_u16(self) -> u16 {
        match self {
            ErrCode::UnsupportedVersion => 1,
            ErrCode::UnknownOp => 2,
            ErrCode::Malformed => 3,
            ErrCode::FrameTooLarge => 4,
            ErrCode::UnknownFile => 5,
            ErrCode::FileMismatch => 6,
            ErrCode::NoView => 7,
            ErrCode::PatternRejected => 8,
            ErrCode::BadRange => 9,
            ErrCode::SizeMismatch => 10,
            ErrCode::ShuttingDown => 11,
            ErrCode::Internal => 12,
            ErrCode::ChecksumMismatch => 13,
            ErrCode::DeadlineExceeded => 14,
        }
    }

    /// Decodes a wire identifier back to a code.
    #[must_use]
    pub fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => ErrCode::UnsupportedVersion,
            2 => ErrCode::UnknownOp,
            3 => ErrCode::Malformed,
            4 => ErrCode::FrameTooLarge,
            5 => ErrCode::UnknownFile,
            6 => ErrCode::FileMismatch,
            7 => ErrCode::NoView,
            8 => ErrCode::PatternRejected,
            9 => ErrCode::BadRange,
            10 => ErrCode::SizeMismatch,
            11 => ErrCode::ShuttingDown,
            12 => ErrCode::Internal,
            13 => ErrCode::ChecksumMismatch,
            14 => ErrCode::DeadlineExceeded,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrCode::UnsupportedVersion => "unsupported protocol version",
            ErrCode::UnknownOp => "unknown opcode",
            ErrCode::Malformed => "malformed payload",
            ErrCode::FrameTooLarge => "frame exceeds the size budget",
            ErrCode::UnknownFile => "unknown file",
            ErrCode::FileMismatch => "file exists with a different length",
            ErrCode::NoView => "no view set for this compute node",
            ErrCode::PatternRejected => "view pattern rejected by the audit",
            ErrCode::BadRange => "invalid interval",
            ErrCode::SizeMismatch => "payload size does not match the projection",
            ErrCode::ShuttingDown => "daemon is shutting down",
            ErrCode::Internal => "internal storage error",
            ErrCode::ChecksumMismatch => "stored data failed checksum verification",
            ErrCode::DeadlineExceeded => "request deadline expired before execution",
        };
        f.write_str(s)
    }
}

/// A structured protocol error: the code, the PA diagnostic codes when the
/// audit rejected a pattern, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// What class of failure this is.
    pub code: ErrCode,
    /// `parafile-audit` codes (e.g. `"PA020"`) for [`ErrCode::PatternRejected`].
    pub pa_codes: Vec<String>,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    /// Builds an error with no PA codes.
    #[must_use]
    pub fn new(code: ErrCode, message: impl Into<String>) -> Self {
        Self { code, pa_codes: Vec::new(), message: message.into() }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code, self.message)?;
        if !self.pa_codes.is_empty() {
            write!(f, " [{}]", self.pa_codes.join(", "))?;
        }
        Ok(())
    }
}

/// Errors surfaced by the client library and daemon plumbing.
#[derive(Debug)]
pub enum NetError {
    /// The peer answered with a typed protocol error.
    Protocol(ProtocolError),
    /// A socket-level failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// A reply frame that could not be decoded.
    BadReply(String),
    /// The peer echoed a request id we did not send.
    IdMismatch {
        /// Id we sent.
        sent: u64,
        /// Id that came back.
        got: u64,
    },
    /// The daemon shed the request before executing it (admission control:
    /// `Busy` means this request was declined, `Overloaded` means the whole
    /// connection was; protocol ≥ 5). Nothing was applied either way, so
    /// retrying after the hinted delay is always safe — this variant
    /// surfaces only when the retry budget or deadline forbids the client
    /// from retrying itself.
    Busy {
        /// The daemon's suggested wait before retrying, in milliseconds.
        retry_after_ms: u32,
    },
    /// A client-side usage error (unknown file id, view not set, …).
    Usage(String),
    /// An invalid partition/FALLS structure on the client side.
    Model(parafile::Error),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Protocol(e) => write!(f, "protocol error: {e}"),
            NetError::Io(e) => write!(f, "I/O error: {e}"),
            NetError::BadReply(m) => write!(f, "undecodable reply: {m}"),
            NetError::IdMismatch { sent, got } => {
                write!(f, "reply id {got} does not match request id {sent}")
            }
            NetError::Busy { retry_after_ms } => {
                write!(f, "daemon shed the request; retry after {retry_after_ms} ms")
            }
            NetError::Usage(m) => write!(f, "{m}"),
            NetError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<parafile::Error> for NetError {
    fn from(e: parafile::Error) -> Self {
        NetError::Model(e)
    }
}

impl From<ProtocolError> for NetError {
    fn from(e: ProtocolError) -> Self {
        NetError::Protocol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for v in 1..=14u16 {
            let c = ErrCode::from_u16(v).expect("code defined");
            assert_eq!(c.as_u16(), v);
        }
        assert_eq!(ErrCode::from_u16(0), None);
        assert_eq!(ErrCode::from_u16(999), None);
    }

    #[test]
    fn errors_render() {
        let mut e = ProtocolError::new(ErrCode::PatternRejected, "2 error diagnostics");
        e.pa_codes = vec!["PA020".into(), "PA021".into()];
        let s = NetError::Protocol(e).to_string();
        assert!(s.contains("PA020"));
        assert!(s.contains("audit"));
    }
}
