//! Per-node client connection with reconnect and retry.
//!
//! A [`NodeClient`] speaks the frame protocol to exactly one I/O-node
//! daemon. Transport failures on retry-safe requests (everything except
//! `Shutdown` — stamped writes are deduplicated by the daemon, and
//! everything else is naturally idempotent) are retried with capped,
//! jittered exponential backoff over a fresh connection. Protocol errors
//! are never retried: the daemon meant them.

use crate::backoff::Backoff;
use crate::error::NetError;
use crate::server::NetStream;
use crate::wire::{self, FrameReadError, Reply, Request, DEFAULT_MAX_FRAME, PROTOCOL_VERSION};
use std::time::Duration;

/// Retry/backoff policy for idempotent requests.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total connection attempts per request (1 = no retry).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Backoff cap (doubling stops here).
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// The backoff schedule this policy prescribes, jitter-seeded by
    /// `seed` (a peer identity, so distinct clients desynchronize).
    #[must_use]
    pub fn backoff(&self, seed: u64) -> Backoff {
        Backoff::new(self.base_delay, self.max_delay, seed)
    }
}

/// A client connection to one I/O-node daemon.
pub struct NodeClient {
    addr: String,
    stream: Option<NetStream>,
    next_id: u64,
    max_frame: u32,
    timeout: Option<Duration>,
    retry: RetryPolicy,
    /// Shared backoff schedule, jitter-seeded from the address so two
    /// clients of the same process desynchronize their retries.
    backoff: Backoff,
    /// Recycled request-encode buffer (one allocation per connection, not
    /// per frame).
    scratch_out: Vec<u8>,
    /// Recycled reply-frame buffer.
    scratch_in: Vec<u8>,
}

impl NodeClient {
    /// Creates a client for `addr` (`host:port` or `unix:/path`). The
    /// connection is established lazily on the first request.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        let addr = addr.into();
        let seed = Self::addr_seed(&addr);
        let retry = RetryPolicy::default();
        Self {
            addr,
            stream: None,
            next_id: 1,
            max_frame: DEFAULT_MAX_FRAME,
            timeout: Some(Duration::from_secs(30)),
            backoff: retry.backoff(seed),
            retry,
            scratch_out: Vec::new(),
            scratch_in: Vec::new(),
        }
    }

    /// FNV-1a over the address: the jitter seed that desynchronizes
    /// same-process clients of different daemons.
    fn addr_seed(addr: &str) -> u64 {
        addr.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        })
    }

    /// Overrides the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.backoff = retry.backoff(Self::addr_seed(&self.addr));
        self.retry = retry;
        self
    }

    /// The daemon address this client talks to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn connected(&mut self) -> std::io::Result<&mut NetStream> {
        if self.stream.is_none() {
            let s = NetStream::connect(&self.addr)?;
            s.set_read_timeout(self.timeout)?;
            self.stream = Some(s);
        }
        Ok(self.stream.as_mut().expect("stream just set"))
    }

    /// One request/reply exchange over the current connection. Both the
    /// encoded request and the reply frame live in per-client scratch
    /// buffers, so a warm connection does zero per-frame allocation.
    fn exchange(&mut self, request: &Request) -> Result<Reply, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut payload = std::mem::take(&mut self.scratch_out);
        request.encode_payload_at_into(PROTOCOL_VERSION, &mut payload);
        let mut body = std::mem::take(&mut self.scratch_in);
        let max_frame = self.max_frame;
        let result = (|| -> Result<Reply, NetError> {
            let stream = self.connected()?;
            wire::write_frame(stream, request.opcode(), id, &payload)?;
            let frame = match wire::read_frame_buf(stream, max_frame, &mut body) {
                Ok(f) => f,
                Err(FrameReadError::Io(e)) => return Err(NetError::Io(e)),
                Err(FrameReadError::Closed) => {
                    return Err(NetError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "daemon closed the connection before replying",
                    )))
                }
                Err(FrameReadError::TooLarge(len)) => {
                    return Err(NetError::BadReply(format!("reply frame of {len} bytes")))
                }
                Err(FrameReadError::TooShort(len)) => {
                    return Err(NetError::BadReply(format!("reply frame length {len}")))
                }
            };
            if frame.version != PROTOCOL_VERSION {
                return Err(NetError::BadReply(format!("reply version {}", frame.version)));
            }
            // The daemon answers frames with id 0 only when framing broke;
            // the connection is unusable either way.
            if frame.request_id != id {
                return Err(NetError::IdMismatch { sent: id, got: frame.request_id });
            }
            Reply::decode(frame.opcode, frame.payload)
                .map_err(|e| NetError::BadReply(e.to_string()))
        })();
        self.scratch_out = payload;
        self.scratch_in = body;
        result
    }

    /// Sends `request` and returns the decoded reply. Transport failures on
    /// retry-safe requests reconnect and retry with capped, jittered
    /// exponential backoff; an `Error` reply is returned as
    /// [`NetError::Protocol`] without retrying.
    pub fn call(&mut self, request: &Request) -> Result<Reply, NetError> {
        let attempts = if request.retry_safe() { self.retry.attempts.max(1) } else { 1 };
        self.backoff.reset();
        let mut last_err: Option<NetError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.backoff.sleep();
            }
            // Connect first, separately from the exchange: a connect
            // failure means the node is still down (keep widening the
            // backoff), while a request dying on a *fresh* connection
            // means the node is back — the accumulated delay is stale and
            // the next retry should start from the base again.
            let fresh = self.stream.is_none();
            if fresh {
                if let Err(e) = self.connected() {
                    last_err = Some(NetError::Io(e));
                    continue;
                }
            }
            match self.exchange(request) {
                Ok(Reply::Error(e)) => return Err(NetError::Protocol(e)),
                Ok(reply) => return Ok(reply),
                Err(err @ (NetError::Io(_) | NetError::IdMismatch { .. })) => {
                    // The connection is broken or desynchronized: drop it so
                    // the next attempt reconnects.
                    self.stream = None;
                    if fresh {
                        self.backoff.reset();
                    }
                    last_err = Some(err);
                }
                Err(other) => return Err(other),
            }
        }
        Err(last_err.expect("at least one attempt ran"))
    }

    /// Like [`call`](Self::call), but demands a specific success shape.
    pub fn expect_ok(&mut self, request: &Request) -> Result<(), NetError> {
        match self.call(request)? {
            Reply::Ok => Ok(()),
            other => Err(NetError::BadReply(format!("expected Ok, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, DaemonConfig};

    #[test]
    fn retries_reconnect_after_daemon_restart() {
        // Bind on an OS-assigned port, talk, stop the daemon, restart it on
        // the same port, and check the client's retry path reconnects.
        let mut handle = serve("127.0.0.1:0", DaemonConfig::default()).expect("bind");
        let addr = handle.addr().to_string();
        let mut client = NodeClient::new(&addr);
        client.expect_ok(&Request::Open { file: 1, subfile: 0, len: 8 }).expect("first open");
        handle.stop();
        let _handle2 = serve(&addr, DaemonConfig::default()).expect("rebind");
        client
            .expect_ok(&Request::Open { file: 1, subfile: 0, len: 8 })
            .expect("open after restart retries onto the new daemon");
    }

    #[test]
    fn connect_failure_is_io_after_retries() {
        // Nothing listens on this address (bound then dropped).
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let mut client = NodeClient::new(addr).with_retry(RetryPolicy {
            attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
        });
        let err = client.call(&Request::Stat { file: 1 }).unwrap_err();
        assert!(matches!(err, NetError::Io(_)), "got {err}");
    }
}
