//! Per-node client connection with reconnect, retry, and chunk streaming.
//!
//! A [`NodeClient`] speaks the frame protocol to exactly one I/O-node
//! daemon. Transport failures on retry-safe requests (everything except
//! `Shutdown` — stamped writes are deduplicated by the daemon, and
//! everything else is naturally idempotent) are retried with capped,
//! jittered exponential backoff over a fresh connection. Protocol errors
//! are never retried: the daemon meant them.
//!
//! # Version negotiation and chunking
//!
//! The client opens every peer optimistically at [`PROTOCOL_VERSION`]. A
//! daemon that answers `UnsupportedVersion` makes the client step down one
//! version and re-issue the request transparently; the negotiated version
//! sticks for the client's lifetime. On protocol ≥ 3 peers, large `Write`
//! payloads are split into `WriteChunk` frames (bounded by the daemon's
//! advertised `max_chunk`, learned from a one-time `Ping` probe) with a
//! small in-flight window, and `Read` requests become `ReadChunk` streams
//! reassembled locally — callers keep seeing plain `WriteOk`/`Data`
//! replies either way. `PF_NET_CHUNK` overrides the chunk size (`0`
//! disables chunking entirely).

use crate::backoff::Backoff;
use crate::error::{ErrCode, NetError, ProtocolError};
use crate::proto::{ChunkSender, Negotiation};
use crate::resilience::{Deadline, RetryBudget};
use crate::server::NetStream;
use crate::wire::{
    self, FrameReadError, Reply, Request, DEFAULT_MAX_FRAME, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// In-flight `WriteChunk` frames per connection before the sender waits
/// for an acknowledgment. Small by design: the point is overlapping the
/// encode/send of chunk *n+1* with the server's journal+scatter of chunk
/// *n*, not unbounded buffering.
pub const CHUNK_WINDOW: usize = 4;

/// Retry/backoff policy for idempotent requests.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total connection attempts per request (1 = no retry).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Backoff cap (doubling stops here).
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// The backoff schedule this policy prescribes, jitter-seeded by
    /// `seed` (a peer identity, so distinct clients desynchronize).
    #[must_use]
    pub fn backoff(&self, seed: u64) -> Backoff {
        Backoff::new(self.base_delay, self.max_delay, seed)
    }
}

/// A client connection to one I/O-node daemon.
pub struct NodeClient {
    addr: String,
    stream: Option<NetStream>,
    next_id: u64,
    max_frame: u32,
    timeout: Option<Duration>,
    retry: RetryPolicy,
    /// Shared backoff schedule, jitter-seeded from the address so two
    /// clients of the same process desynchronize their retries.
    backoff: Backoff,
    /// Recycled request-encode buffer (one allocation per connection, not
    /// per frame).
    scratch_out: Vec<u8>,
    /// Recycled reply-frame buffer.
    scratch_in: Vec<u8>,
    /// Version-negotiation automaton for this peer: starts at
    /// [`PROTOCOL_VERSION`], stepped down when the daemon answers
    /// `UnsupportedVersion`.
    negotiation: Negotiation,
    /// The peer's advertised chunk capability (`Pong.max_chunk`), learned
    /// lazily from the first `Ping` that crosses this client. `None` =
    /// not yet probed; `Some(0)` = peer does not chunk.
    peer_max_chunk: Option<u32>,
    /// `PF_NET_CHUNK` override (or [`with_chunk`](Self::with_chunk)):
    /// `Some(0)` disables chunking, `Some(n)` caps chunk data at `n`
    /// bytes, `None` uses the peer's advertised capability.
    chunk_override: Option<u32>,
    /// The `(session, seq)` stamp of a chunked write that died mid-stream,
    /// eligible for a `ResumeQuery` before its retry (protocol ≥ 4).
    resume_candidate: Option<(u64, u64)>,
    /// Offset the most recent chunked write resumed from (0 = it started
    /// from scratch) — telemetry for tests and `pf io`.
    last_resume_offset: u64,
    /// The deadline attached to calls (DESIGN.md §16): propagated on the
    /// wire at protocol ≥ 5, used locally to clamp socket timeouts and to
    /// refuse retries that cannot finish in time. Defaults to unbounded.
    deadline: Deadline,
    /// Session-wide retry budget shared across every [`NodeClient`] of a
    /// session. `None` = legacy per-call retries (bounded only by the
    /// [`RetryPolicy`] attempt count).
    retry_budget: Option<Arc<RetryBudget>>,
}

impl NodeClient {
    /// Creates a client for `addr` (`host:port` or `unix:/path`). The
    /// connection is established lazily on the first request.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        let addr = addr.into();
        let seed = Self::addr_seed(&addr);
        let retry = RetryPolicy::default();
        Self {
            addr,
            stream: None,
            next_id: 1,
            max_frame: DEFAULT_MAX_FRAME,
            timeout: Some(Duration::from_secs(30)),
            backoff: retry.backoff(seed),
            retry,
            scratch_out: Vec::new(),
            scratch_in: Vec::new(),
            negotiation: Negotiation::new(),
            peer_max_chunk: None,
            chunk_override: Self::env_chunk(),
            resume_candidate: None,
            last_resume_offset: 0,
            deadline: Deadline::none(),
            retry_budget: None,
        }
    }

    /// Parses `PF_NET_CHUNK` (bytes; `0` disables chunking).
    pub(crate) fn env_chunk() -> Option<u32> {
        std::env::var("PF_NET_CHUNK").ok().and_then(|v| v.trim().parse().ok())
    }

    /// FNV-1a over the address: the jitter seed that desynchronizes
    /// same-process clients of different daemons.
    pub(crate) fn addr_seed(addr: &str) -> u64 {
        addr.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        })
    }

    /// Overrides the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.backoff = retry.backoff(Self::addr_seed(&self.addr));
        self.retry = retry;
        self
    }

    /// Overrides the chunk size (`Some(0)` disables chunking, `None`
    /// restores the `PF_NET_CHUNK` / peer-advertised default).
    #[must_use]
    pub fn with_chunk(mut self, chunk: Option<u32>) -> Self {
        self.chunk_override = chunk;
        self
    }

    /// Attaches a session-wide retry budget: every retry of every call
    /// spends from it, and a dry bucket fails fast instead of retrying.
    #[must_use]
    pub fn with_retry_budget(mut self, budget: Arc<RetryBudget>) -> Self {
        self.retry_budget = Some(budget);
        self
    }

    /// See [`with_retry_budget`](Self::with_retry_budget).
    pub fn set_retry_budget(&mut self, budget: Arc<RetryBudget>) {
        self.retry_budget = Some(budget);
    }

    /// Sets the deadline attached to subsequent calls. The remaining
    /// budget is re-read at every hop: it is stamped into protocol ≥ 5
    /// frames, clamps the socket read timeout, and vetoes retries that
    /// start after expiry. [`Deadline::none`] restores unbounded calls.
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = deadline;
    }

    /// The deadline currently attached to calls.
    #[must_use]
    pub fn deadline(&self) -> Deadline {
        self.deadline
    }

    /// The daemon address this client talks to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The protocol version negotiated with the peer so far.
    #[must_use]
    pub fn negotiated_version(&self) -> u8 {
        self.negotiation.version()
    }

    /// The peer's advertised chunk capability, if a `Pong` has been seen.
    #[must_use]
    pub fn peer_max_chunk(&self) -> Option<u32> {
        self.peer_max_chunk
    }

    /// The offset the most recent chunked write resumed from — `0` means
    /// it started from scratch (the common case), non-zero means a retry
    /// skipped that many already-acknowledged payload bytes.
    #[must_use]
    pub fn last_resume_offset(&self) -> u64 {
        self.last_resume_offset
    }

    fn connected(&mut self) -> std::io::Result<&mut NetStream> {
        if self.stream.is_none() {
            let s = NetStream::connect(&self.addr)?;
            s.set_read_timeout(self.timeout)?;
            self.stream = Some(s);
        }
        match self.stream.as_mut() {
            Some(s) => Ok(s),
            None => Err(std::io::Error::other("connection slot empty after connect")),
        }
    }

    /// Sends one request frame at the negotiated version under a fresh
    /// request id, which is returned. The encode buffer is the per-client
    /// scratch, so a warm connection does zero per-frame allocation.
    fn send_request(&mut self, request: &Request) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let version = self.negotiation.version();
        let deadline_ms =
            if self.negotiation.supports_deadlines() { self.deadline.wire_ms() } else { 0 };
        let mut payload = std::mem::take(&mut self.scratch_out);
        request.encode_payload_deadline_into(version, deadline_ms, &mut payload);
        let sent = match self.connected() {
            Ok(stream) => wire::write_frame_at(stream, version, request.opcode(), id, &payload)
                .map_err(NetError::Io),
            Err(e) => Err(NetError::Io(e)),
        };
        self.scratch_out = payload;
        sent.map(|()| id)
    }

    /// Reads one reply frame, which must answer request `id`. Decodes at
    /// the frame's own version (daemons answer in the version the request
    /// arrived with). `Pong` capability advertisements are recorded.
    fn read_reply(&mut self, id: u64) -> Result<Reply, NetError> {
        let mut body = std::mem::take(&mut self.scratch_in);
        let result = Self::read_reply_from(self.stream.as_mut(), self.max_frame, id, &mut body);
        self.scratch_in = body;
        if let Ok(Reply::Pong { max_chunk, .. }) = &result {
            self.peer_max_chunk = Some(*max_chunk);
        }
        result
    }

    fn read_reply_from(
        stream: Option<&mut NetStream>,
        max_frame: u32,
        id: u64,
        body: &mut Vec<u8>,
    ) -> Result<Reply, NetError> {
        let stream = stream.ok_or_else(|| {
            NetError::Io(std::io::Error::other("connection dropped mid-exchange"))
        })?;
        let frame = match wire::read_frame_buf(stream, max_frame, body) {
            Ok(f) => f,
            Err(FrameReadError::Io(e)) => return Err(NetError::Io(e)),
            Err(FrameReadError::Closed) => {
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection before replying",
                )))
            }
            Err(FrameReadError::TooLarge(len)) => {
                return Err(NetError::BadReply(format!("reply frame of {len} bytes")))
            }
            Err(FrameReadError::TooShort(len)) => {
                return Err(NetError::BadReply(format!("reply frame length {len}")))
            }
        };
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&frame.version) {
            return Err(NetError::BadReply(format!("reply version {}", frame.version)));
        }
        // The daemon answers frames with id 0 only when framing broke;
        // the connection is unusable either way.
        if frame.request_id != id {
            return Err(NetError::IdMismatch { sent: id, got: frame.request_id });
        }
        Reply::decode_at(frame.version, frame.opcode, frame.payload)
            .map_err(|e| NetError::BadReply(e.to_string()))
    }

    /// One request/reply exchange over the current connection.
    fn exchange(&mut self, request: &Request) -> Result<Reply, NetError> {
        let id = self.send_request(request)?;
        self.read_reply(id)
    }

    /// The chunk data size to use against this peer right now (`0` =
    /// monolithic frames). Meaningful once the capability probe has run.
    fn effective_chunk(&self) -> u32 {
        if !self.negotiation.supports_chunking() || self.chunk_override == Some(0) {
            return 0;
        }
        let cap = self.peer_max_chunk.unwrap_or(0);
        if cap == 0 {
            return 0;
        }
        let want = self.chunk_override.unwrap_or(cap).min(cap);
        want.clamp(1, self.max_frame.saturating_sub(64).max(1))
    }

    /// Executes one logical request on the wire: a plain exchange, or a
    /// chunk stream when the request is a large `Write` / any `Read` and
    /// the negotiated peer supports chunking.
    fn transact(&mut self, request: &Request) -> Result<Reply, NetError> {
        let chunkable = matches!(request, Request::Write { .. } | Request::Read { .. });
        if !chunkable {
            return self.exchange(request);
        }
        if self.negotiation.supports_chunking()
            && self.chunk_override != Some(0)
            && self.peer_max_chunk.is_none()
        {
            // One-time capability probe. An error reply (e.g.
            // `UnsupportedVersion` from an older daemon) surfaces to the
            // caller, which downgrades and re-issues the real request.
            match self.exchange(&Request::Ping)? {
                Reply::Pong { .. } => {}
                reply @ (Reply::Error(_) | Reply::Busy { .. } | Reply::Overloaded { .. }) => {
                    return Ok(reply)
                }
                other => return Err(NetError::BadReply(format!("expected Pong, got {other:?}"))),
            }
        }
        let chunk = self.effective_chunk();
        match request {
            Request::Write { file, compute, l_s, r_s, session, seq, payload }
                if chunk > 0 && payload.len() > chunk as usize =>
            {
                self.write_chunked(
                    *file,
                    *compute,
                    *l_s,
                    *r_s,
                    *session,
                    *seq,
                    payload,
                    chunk as usize,
                )
            }
            Request::Read { file, compute, l_s, r_s } if chunk > 0 => {
                self.read_chunked(*file, *compute, *l_s, *r_s, chunk)
            }
            _ => self.exchange(request),
        }
    }

    /// Streams `payload` as `WriteChunk` frames with an in-flight window of
    /// [`CHUNK_WINDOW`], so the encode/send of the next chunk overlaps the
    /// daemon's journal+scatter of the previous one. The final chunk is
    /// acknowledged with the ordinary `WriteOk`.
    #[allow(clippy::too_many_arguments)]
    fn write_chunked(
        &mut self,
        file: u64,
        compute: u32,
        l_s: u64,
        r_s: u64,
        session: u64,
        seq: u64,
        payload: &[u8],
        chunk: usize,
    ) -> Result<Reply, NetError> {
        let total = payload.len() as u64;
        let n_chunks = payload.len().div_ceil(chunk).max(1);
        // If a previous attempt of this exact stamp died mid-stream, ask
        // the daemon how far it got and fast-forward past the chunks it
        // already applied and journaled. Anything but a clean, aligned,
        // partial answer (daemon restarted, stamp completed, progress
        // evicted) starts the stream over at offset 0 — always safe.
        let mut skip = 0u64;
        self.last_resume_offset = 0;
        if session != 0
            && self.negotiation.supports_resume()
            && self.resume_candidate == Some((session, seq))
        {
            match self.exchange(&Request::ResumeQuery { file, session, seq }) {
                Ok(Reply::ResumeAt { offset })
                    if offset > 0 && offset < total && offset % chunk as u64 == 0 =>
                {
                    skip = offset / chunk as u64;
                    self.last_resume_offset = offset;
                }
                Ok(_) => {}
                Err(e) => {
                    self.stream = None;
                    return Err(e);
                }
            }
        }
        // The window automaton decides when the wire admits another chunk;
        // `pending` remembers the (request id, is-final) bookkeeping of
        // everything sent but not yet acknowledged.
        let mut sender = ChunkSender::new(n_chunks as u64 - skip, CHUNK_WINDOW as u64);
        let mut pending: VecDeque<(u64, bool)> = VecDeque::with_capacity(CHUNK_WINDOW);
        let mut send_err: Option<NetError> = None;
        let result = loop {
            while send_err.is_none() {
                let Some(plan) = sender.next_to_send() else { break };
                let off = (plan.index + skip) as usize * chunk;
                let end = (off + chunk).min(payload.len());
                let req = Request::WriteChunk {
                    file,
                    compute,
                    l_s,
                    r_s,
                    session,
                    seq,
                    offset: off as u64,
                    total,
                    last: plan.last,
                    data: payload[off..end].to_vec(),
                };
                match self.send_request(&req) {
                    Ok(id) => {
                        sender.record_send();
                        pending.push_back((id, plan.last));
                    }
                    Err(e) => send_err = Some(e),
                }
            }
            let Some((id, last)) = pending.pop_front() else {
                break Err(send_err.unwrap_or_else(|| {
                    NetError::Io(std::io::Error::other(
                        "chunk stream ended with no pending acknowledgment",
                    ))
                }));
            };
            match self.read_reply(id) {
                Ok(Reply::ChunkOk { .. }) if !last => {
                    if let Err(v) = sender.record_ack() {
                        break Err(NetError::BadReply(v.to_string()));
                    }
                }
                Ok(reply @ Reply::WriteOk { .. }) if last => break Ok(reply),
                // A shed or error reply terminates the stream on the daemon
                // side; the post-loop cleanup drops the connection and
                // records the resume candidate.
                Ok(err @ (Reply::Error(_) | Reply::Busy { .. } | Reply::Overloaded { .. })) => {
                    break Ok(err)
                }
                Ok(other) => {
                    break Err(NetError::BadReply(format!(
                        "chunk stream acknowledged with {other:?}"
                    )))
                }
                Err(e) => break Err(e),
            }
        };
        // Anything but a clean final acknowledgment leaves unanswered
        // frames on the wire: drop the connection so the next request (or
        // the retry of this one — dedup makes it exactly-once) resyncs,
        // and remember the stamp so the retry can try to resume.
        if matches!(result, Ok(Reply::WriteOk { .. })) {
            if self.resume_candidate == Some((session, seq)) {
                self.resume_candidate = None;
            }
        } else {
            self.stream = None;
            if session != 0 {
                self.resume_candidate = Some((session, seq));
            }
        }
        result
    }

    /// Issues a `ReadChunk` and reassembles the streamed `DataChunk`
    /// replies into a single `Data` payload.
    fn read_chunked(
        &mut self,
        file: u64,
        compute: u32,
        l_s: u64,
        r_s: u64,
        chunk: u32,
    ) -> Result<Reply, NetError> {
        let req = Request::ReadChunk { file, compute, l_s, r_s, max_chunk: chunk };
        let id = self.send_request(&req)?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.read_reply(id) {
                Ok(Reply::DataChunk { offset, last, data }) => {
                    if offset != out.len() as u64 {
                        self.stream = None;
                        return Err(NetError::BadReply(format!(
                            "data chunk at offset {offset}, expected {}",
                            out.len()
                        )));
                    }
                    out.extend_from_slice(&data);
                    if last {
                        return Ok(Reply::Data { payload: out });
                    }
                }
                // An error or shed reply terminates the stream on the daemon
                // side too; drop the connection for sheds (the daemon never
                // started the stream, but our request frame is half-answered).
                Ok(err @ Reply::Error(_)) => return Ok(err),
                Ok(shed @ (Reply::Busy { .. } | Reply::Overloaded { .. })) => {
                    self.stream = None;
                    return Ok(shed);
                }
                Ok(other) => {
                    self.stream = None;
                    return Err(NetError::BadReply(format!("read stream answered with {other:?}")));
                }
                Err(e) => {
                    self.stream = None;
                    return Err(e);
                }
            }
        }
    }

    /// Whether a retry may proceed: spends one token from the session-wide
    /// budget when one is attached (a dry bucket vetoes the retry).
    fn budget_allows_retry(&self) -> bool {
        self.retry_budget.as_ref().is_none_or(|b| b.try_spend())
    }

    /// Clamps the socket read timeout to the remaining deadline budget so
    /// a slow daemon cannot hold the call past its deadline.
    fn apply_deadline_timeout(&mut self) {
        let clamped = match self.deadline.remaining() {
            None => self.timeout,
            Some(_) => {
                Some(self.deadline.clamp_timeout(self.timeout.unwrap_or(Duration::from_secs(30))))
            }
        };
        if let Some(stream) = self.stream.as_ref() {
            let _ = stream.set_read_timeout(clamped);
        }
    }

    fn deadline_error() -> NetError {
        NetError::Protocol(ProtocolError::new(
            ErrCode::DeadlineExceeded,
            "deadline expired on the client before the request could be (re)sent",
        ))
    }

    /// Sends `request` and returns the decoded reply. Transport failures on
    /// retry-safe requests reconnect and retry with capped, jittered
    /// exponential backoff; an `Error` reply is returned as
    /// [`NetError::Protocol`] without retrying — except
    /// `UnsupportedVersion`, which steps the negotiated protocol version
    /// down and re-issues the request transparently.
    ///
    /// Resilience (DESIGN.md §16): every retry first spends from the
    /// session-wide [`RetryBudget`] when one is attached; a `Busy` /
    /// `Overloaded` shed from the daemon is retried after its hinted delay
    /// (it is surfaced as [`NetError::Busy`] when retries are forbidden);
    /// and a [`Deadline`] vetoes sends and retries that start after expiry.
    pub fn call(&mut self, request: &Request) -> Result<Reply, NetError> {
        let retryable = request.retry_safe();
        let attempts = if retryable { self.retry.attempts.max(1) } else { 1 };
        self.backoff.reset();
        let mut last_err: Option<NetError> = None;
        let mut attempt = 0;
        // Set when the previous attempt was shed: retry after the daemon's
        // hint instead of the backoff schedule.
        let mut shed_wait: Option<Duration> = None;
        while attempt < attempts {
            if attempt > 0 {
                if !self.budget_allows_retry() {
                    break;
                }
                match shed_wait.take() {
                    Some(hint) => std::thread::sleep(self.deadline.clamp_timeout(hint)),
                    None => self.backoff.sleep(),
                }
            }
            if self.deadline.expired() {
                return Err(Self::deadline_error());
            }
            // Connect first, separately from the exchange: a connect
            // failure means the node is still down (keep widening the
            // backoff), while a request dying on a *fresh* connection
            // means the node is back — the accumulated delay is stale and
            // the next retry should start from the base again.
            let fresh = self.stream.is_none();
            if fresh {
                if let Err(e) = self.connected() {
                    last_err = Some(NetError::Io(e));
                    attempt += 1;
                    continue;
                }
            }
            self.apply_deadline_timeout();
            match self.transact(request) {
                Ok(Reply::Error(e))
                    if e.code == ErrCode::UnsupportedVersion
                        && self.negotiation.can_downgrade() =>
                {
                    // The daemon is older than us: negotiate down and
                    // re-issue without consuming a retry attempt. The match
                    // guard checked `can_downgrade`, so the step succeeds.
                    let stepped = self.negotiation.downgrade();
                    debug_assert!(stepped);
                }
                Ok(Reply::Error(e)) => return Err(NetError::Protocol(e)),
                Ok(Reply::Busy { retry_after_ms }) => {
                    // Admission control declined the request; nothing ran,
                    // so retrying after the hint is safe for any request.
                    last_err = Some(NetError::Busy { retry_after_ms });
                    shed_wait = Some(Duration::from_millis(u64::from(retry_after_ms)));
                    attempt += 1;
                }
                Ok(Reply::Overloaded { retry_after_ms }) => {
                    // The daemon is closing the whole connection; reconnect
                    // on the next attempt.
                    self.stream = None;
                    last_err = Some(NetError::Busy { retry_after_ms });
                    shed_wait = Some(Duration::from_millis(u64::from(retry_after_ms)));
                    attempt += 1;
                }
                Ok(reply) => {
                    if let Some(budget) = &self.retry_budget {
                        budget.record_success();
                    }
                    return Ok(reply);
                }
                Err(err @ (NetError::Io(_) | NetError::IdMismatch { .. })) => {
                    // The connection is broken or desynchronized: drop it so
                    // the next attempt reconnects.
                    self.stream = None;
                    if fresh {
                        self.backoff.reset();
                    }
                    last_err = Some(err);
                    attempt += 1;
                }
                Err(other) => return Err(other),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            NetError::Io(std::io::Error::other("request gave up before any attempt ran"))
        }))
    }

    /// Like [`call`](Self::call), but demands a specific success shape.
    pub fn expect_ok(&mut self, request: &Request) -> Result<(), NetError> {
        match self.call(request)? {
            Reply::Ok => Ok(()),
            other => Err(NetError::BadReply(format!("expected Ok, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, DaemonConfig};

    #[test]
    fn retries_reconnect_after_daemon_restart() {
        // Bind on an OS-assigned port, talk, stop the daemon, restart it on
        // the same port, and check the client's retry path reconnects.
        let mut handle = serve("127.0.0.1:0", DaemonConfig::default()).expect("bind");
        let addr = handle.addr().to_string();
        let mut client = NodeClient::new(&addr);
        client
            .expect_ok(&Request::Open { file: 1, subfile: 0, len: 8, tenant: 0 })
            .expect("first open");
        handle.stop();
        let _handle2 = serve(&addr, DaemonConfig::default()).expect("rebind");
        client
            .expect_ok(&Request::Open { file: 1, subfile: 0, len: 8, tenant: 0 })
            .expect("open after restart retries onto the new daemon");
    }

    #[test]
    fn connect_failure_is_io_after_retries() {
        // Nothing listens on this address (bound then dropped).
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let mut client = NodeClient::new(addr).with_retry(RetryPolicy {
            attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
        });
        let err = client.call(&Request::Stat { file: 1 }).unwrap_err();
        assert!(matches!(err, NetError::Io(_)), "got {err}");
    }

    #[test]
    fn client_downgrades_against_older_daemon() {
        // A daemon capped at protocol 2 rejects the client's v3 frames; the
        // client must negotiate down transparently and report no chunking.
        let config = DaemonConfig { max_version: 2, ..DaemonConfig::default() };
        let mut handle = serve("127.0.0.1:0", config).expect("bind");
        let mut client = NodeClient::new(handle.addr());
        match client.call(&Request::Ping).expect("ping succeeds after downgrade") {
            Reply::Pong { max_chunk, .. } => assert_eq!(max_chunk, 0, "v2 peers cannot chunk"),
            other => panic!("expected Pong, got {other:?}"),
        }
        assert_eq!(client.negotiated_version(), 2);
        assert_eq!(client.peer_max_chunk(), Some(0));
        handle.stop();
    }

    #[test]
    fn chunk_override_zero_disables_chunking() {
        let client = NodeClient::new("127.0.0.1:1").with_chunk(Some(0));
        assert_eq!(client.effective_chunk(), 0);
    }

    #[test]
    fn retry_budget_caps_retries_across_calls() {
        // Nothing listens on this address; every attempt is a connect
        // failure. With a 1-token budget the first call gets exactly one
        // retry (policy would allow 3) and the second call gets none.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let budget = Arc::new(RetryBudget::new(1, 0));
        let mut client = NodeClient::new(addr)
            .with_retry(RetryPolicy {
                attempts: 4,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
            })
            .with_retry_budget(Arc::clone(&budget));
        let err = client.call(&Request::Stat { file: 1 }).unwrap_err();
        assert!(matches!(err, NetError::Io(_)), "got {err}");
        assert_eq!(budget.tokens(), 0, "the single token was spent");
        let start = std::time::Instant::now();
        let err = client.call(&Request::Stat { file: 1 }).unwrap_err();
        assert!(matches!(err, NetError::Io(_)), "got {err}");
        assert!(
            start.elapsed() < Duration::from_millis(250),
            "dry budget fails fast instead of backing off through 3 retries"
        );
    }

    #[test]
    fn expired_deadline_fails_before_the_wire() {
        // The address is never contacted: an already-expired deadline is a
        // client-local typed error.
        let mut client = NodeClient::new("127.0.0.1:1");
        client.set_deadline(Deadline::within(Duration::ZERO));
        let err = client.call(&Request::Stat { file: 1 }).unwrap_err();
        match err {
            NetError::Protocol(e) => assert_eq!(e.code, ErrCode::DeadlineExceeded),
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        // Clearing the deadline restores normal behavior (here: a connect
        // error after retries, not a deadline error).
        client.set_deadline(Deadline::none());
        client = client.with_retry(RetryPolicy {
            attempts: 1,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(1),
        });
        let err = client.call(&Request::Stat { file: 1 }).unwrap_err();
        assert!(matches!(err, NetError::Io(_)), "got {err}");
    }
}
