//! Deterministic fault injection: seeded plans, daemon hooks, and a
//! frame-aware chaos proxy.
//!
//! Every failure scenario in the test matrix and CI is reproducible from a
//! single `u64` seed: [`FaultPlan::from_seed`] expands the seed into one
//! concrete scenario (connection drop, mid-frame truncation, injected
//! delay, flush failure, daemon kill, or a torn scatter write), with every
//! parameter drawn from a [`XorShift64`] stream. The same plan can be
//! wired into two places:
//!
//! * **the daemon** ([`crate::DaemonConfig::fault`]) — exercises the parts
//!   only the server can break: failing `flush()`, crashing between two
//!   segments of a scatter write (the torn-write scenario the journal
//!   exists for), or dying wholesale mid-redistribution;
//! * **the chaos proxy** ([`chaos_proxy`], CLI `pf chaos`) — sits between
//!   a client and an untouched daemon and attacks the transport: drops
//!   connections after N frames, truncates a frame mid-payload, delays
//!   frames, or blacks the node out entirely for a seeded interval.
//!
//! Faults are *schedule-deterministic*: which fault fires and at which
//! frame count is a pure function of the seed. Under concurrent
//! connections the interleaving still varies — the correctness oracle is
//! therefore always final-state equivalence with a fault-free run, not a
//! specific event order.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Minimal deterministic PRNG (xorshift64*), good enough for fault
/// parameter jitter and entirely dependency-free.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator; a zero seed is remapped to a fixed constant.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_u64() % (hi - lo + 1)
    }
}

/// Which direction of a proxied connection a transport fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → daemon (requests; e.g. a `Write` payload upload).
    ClientToServer,
    /// Daemon → client (replies).
    ServerToClient,
}

/// Truncate one frame after `keep` of its bytes, then sever the
/// connection — a torn frame, as a crashed peer or cut link produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncateFault {
    /// 1-based frame index (per connection, per direction) to truncate.
    pub frame: u64,
    /// Bytes of the frame to let through before cutting (may be 0).
    pub keep: u64,
    /// Which direction's frame to truncate (proxy only; the daemon always
    /// truncates its own reply).
    pub dir: Direction,
}

/// A seeded, deterministic failure scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed this plan was expanded from (0 for hand-built plans).
    pub seed: u64,
    /// Sever the connection when its Nth request frame arrives, before it
    /// is served (1-based; each connection counts independently).
    pub drop_after_frames: Option<u64>,
    /// Like `drop_after_frames`, but fires exactly once across the whole
    /// daemon/proxy lifetime: the first connection to reach its Nth frame
    /// is severed, every later connection serves normally. The
    /// deterministic "one mid-stream disconnect, then a clean retry"
    /// scenario resumable uploads are tested with.
    pub drop_once_after_frames: Option<u64>,
    /// Sleep `millis` before serving every `every`-th frame.
    pub delay: Option<(u64, u64)>,
    /// Truncate one frame mid-payload, then sever.
    pub truncate: Option<TruncateFault>,
    /// Fail this many `Flush` requests (server-side) with an `Internal`
    /// error before letting flushes succeed again.
    pub fail_flush: u64,
    /// Kill the whole daemon (or black out the proxied node) after this
    /// many frames served across all connections: no reply, no flush,
    /// every connection severed at once.
    pub kill_after_frames: Option<u64>,
    /// During the Nth `Write` (1-based, daemon-wide), apply only the first
    /// projected segment and then crash — the torn-subfile scenario the
    /// write-ahead journal exists to heal.
    pub torn_write: Option<u64>,
    /// How long a killed/blacked-out node refuses connections before the
    /// harness may bring it back (proxy blackout duration).
    pub blackout_ms: u64,
}

impl FaultPlan {
    /// A plan that injects nothing.
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_after_frames: None,
            drop_once_after_frames: None,
            delay: None,
            truncate: None,
            fail_flush: 0,
            kill_after_frames: None,
            torn_write: None,
            blackout_ms: 0,
        }
    }

    /// Expands `seed` into one concrete scenario. The scenario family is
    /// chosen by the low bits, every parameter by further draws, so any
    /// seed names exactly one reproducible failure.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = XorShift64::new(seed);
        let family = rng.next_u64() % 6;
        let mut plan = match family {
            0 => Self::drop_connection(seed),
            1 => Self::truncate_frame(seed),
            2 => Self::fail_flush(seed),
            3 => Self::kill_one_node(seed),
            4 => Self::torn_write(seed),
            _ => Self::injected_delay(seed),
        };
        plan.seed = seed;
        plan
    }

    /// Sever each connection after a seeded number of request frames.
    #[must_use]
    pub fn drop_connection(seed: u64) -> Self {
        let mut rng = XorShift64::new(seed ^ 0xD20B);
        Self { seed, drop_after_frames: Some(rng.range(2, 6)), ..Self::none() }
    }

    /// Truncate a reply frame mid-payload, then sever.
    #[must_use]
    pub fn truncate_frame(seed: u64) -> Self {
        let mut rng = XorShift64::new(seed ^ 0x7234);
        Self {
            seed,
            truncate: Some(TruncateFault {
                frame: rng.range(2, 5),
                keep: rng.range(1, 13),
                dir: Direction::ServerToClient,
            }),
            ..Self::none()
        }
    }

    /// Fail a seeded number of flushes with an `Internal` error.
    #[must_use]
    pub fn fail_flush(seed: u64) -> Self {
        let mut rng = XorShift64::new(seed ^ 0xF1A5);
        Self { seed, fail_flush: rng.range(1, 3), ..Self::none() }
    }

    /// Kill the daemon (or black out the proxied node) mid-stream.
    #[must_use]
    pub fn kill_one_node(seed: u64) -> Self {
        let mut rng = XorShift64::new(seed ^ 0x4111);
        Self {
            seed,
            kill_after_frames: Some(rng.range(3, 9)),
            blackout_ms: rng.range(50, 200),
            ..Self::none()
        }
    }

    /// Crash mid-scatter during a seeded `Write`, leaving a torn subfile
    /// for journal recovery to heal.
    #[must_use]
    pub fn torn_write(seed: u64) -> Self {
        let mut rng = XorShift64::new(seed ^ 0x709E);
        Self {
            seed,
            torn_write: Some(rng.range(1, 4)),
            blackout_ms: rng.range(50, 150),
            ..Self::none()
        }
    }

    /// Sleep before serving every seeded Nth frame — the tail-slow node
    /// that hedged reads and circuit breakers (DESIGN.md §16) exist for.
    /// Never severs or corrupts anything; the node is merely late.
    #[must_use]
    pub fn injected_delay(seed: u64) -> Self {
        let mut rng = XorShift64::new(seed ^ 0xDE1A);
        Self { seed, delay: Some((rng.range(1, 4), rng.range(40, 180))), ..Self::none() }
    }

    /// Parses a CLI chaos spec: either a bare seed (`"42"`, expanded via
    /// [`FaultPlan::from_seed`]) or `family:seed` with family one of
    /// `drop`, `truncate`, `flush`, `kill`, `torn`, `delay`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let parse_seed =
            |s: &str| s.parse::<u64>().map_err(|_| format!("chaos seed must be a number: {s:?}"));
        match spec.split_once(':') {
            None => Ok(Self::from_seed(parse_seed(spec)?)),
            Some((family, seed)) => {
                let seed = parse_seed(seed)?;
                match family {
                    "drop" => Ok(Self::drop_connection(seed)),
                    "truncate" => Ok(Self::truncate_frame(seed)),
                    "flush" => Ok(Self::fail_flush(seed)),
                    "kill" => Ok(Self::kill_one_node(seed)),
                    "torn" => Ok(Self::torn_write(seed)),
                    "delay" => Ok(Self::injected_delay(seed)),
                    other => Err(format!(
                        "unknown chaos family {other:?} (drop|truncate|flush|kill|torn|delay)"
                    )),
                }
            }
        }
    }

    /// The plan with its one-shot crash faults disarmed — what a restarted
    /// daemon should run with, so one seed means one crash plus recovery,
    /// not a crash loop.
    #[must_use]
    pub fn disarmed_crashes(&self) -> Self {
        Self { kill_after_frames: None, torn_write: None, ..self.clone() }
    }

    /// Whether this plan injects any *transport* fault the chaos proxy can
    /// fire (drop, truncate, kill). Flush failures and torn writes are
    /// server-side faults — a proxy running such a plan plans nothing.
    #[must_use]
    pub fn plans_transport_fault(&self) -> bool {
        self.drop_after_frames.is_some()
            || self.drop_once_after_frames.is_some()
            || self.truncate.is_some()
            || self.kill_after_frames.is_some()
    }
}

/// What the injector tells the connection loop to do with a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Serve normally.
    None,
    /// Sever this connection without serving or replying.
    Drop,
    /// Crash the whole daemon: sever everything, stop accepting.
    Kill,
}

/// Shared fault state for one daemon (or one proxy).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Frames served across all connections (drives kill faults).
    total_frames: AtomicU64,
    /// Flush failures still to inject.
    flush_failures_left: AtomicU64,
    /// `Write` requests seen daemon-wide (drives torn-write faults).
    writes_seen: AtomicU64,
    /// A kill/torn-write fault has fired.
    killed: AtomicBool,
    /// The one-shot drop fault has fired.
    dropped_once: AtomicBool,
}

impl FaultInjector {
    /// Builds the injector for `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let flushes = plan.fail_flush;
        Self {
            plan,
            total_frames: AtomicU64::new(0),
            flush_failures_left: AtomicU64::new(flushes),
            writes_seen: AtomicU64::new(0),
            killed: AtomicBool::new(false),
            dropped_once: AtomicBool::new(false),
        }
    }

    /// The plan this injector runs.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether a kill-class fault has fired.
    #[must_use]
    pub fn killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// Called for every request frame with the connection's own 1-based
    /// frame count. Sleeps injected delays internally.
    pub fn on_frame(&self, conn_frames: u64) -> FrameFault {
        let total = self.total_frames.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some((every, millis)) = self.plan.delay {
            if every > 0 && conn_frames % every == 0 {
                std::thread::sleep(Duration::from_millis(millis));
            }
        }
        if let Some(kill_at) = self.plan.kill_after_frames {
            if total >= kill_at && !self.killed.swap(true, Ordering::SeqCst) {
                return FrameFault::Kill;
            }
            if self.killed() {
                return FrameFault::Kill;
            }
        }
        if let Some(drop_at) = self.plan.drop_after_frames {
            if conn_frames >= drop_at {
                return FrameFault::Drop;
            }
        }
        if let Some(drop_at) = self.plan.drop_once_after_frames {
            if conn_frames >= drop_at && !self.dropped_once.swap(true, Ordering::SeqCst) {
                return FrameFault::Drop;
            }
        }
        FrameFault::None
    }

    /// Bytes of the reply to this connection's Nth frame to let through
    /// before severing, when a truncation fault targets it.
    #[must_use]
    pub fn truncate_reply_at(&self, conn_frames: u64) -> Option<u64> {
        match self.plan.truncate {
            Some(t) if t.dir == Direction::ServerToClient && conn_frames == t.frame => Some(t.keep),
            _ => None,
        }
    }

    /// Whether to fail this `Flush` with an injected `Internal` error.
    pub fn on_flush(&self) -> bool {
        self.flush_failures_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Called per `Write`: `true` means crash after the first applied
    /// segment (the torn-write scenario). Fires at most once.
    pub fn on_write_torn(&self) -> bool {
        let n = self.writes_seen.fetch_add(1, Ordering::SeqCst) + 1;
        match self.plan.torn_write {
            Some(at) if n >= at => !self.killed.swap(true, Ordering::SeqCst),
            _ => false,
        }
    }
}

// ---------------------------------------------------------------------------
// The chaos proxy

/// What a chaos-proxy run observed, for distinguishing "the planned fault
/// fired" from "the protocol broke in a way the plan does not explain".
///
/// An error reply flowing back to the client is only *unexpected* when its
/// code is not `UnsupportedVersion` — version rejection is the legitimate
/// first step of the v3→v2 fallback handshake, not a failure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// Transport faults (drop / truncate / kill) the proxy injected.
    pub planned_faults: u64,
    /// Error replies other than `UnsupportedVersion` seen flowing back to
    /// the client.
    pub unexpected_errors: u64,
    /// Frames the proxy held back with an injected delay. Delays never
    /// sever or corrupt, so they count separately from `planned_faults`:
    /// a slow node is a tail-latency scenario, not a failure.
    pub injected_delays: u64,
}

/// A running chaos proxy; dropping it stops the listener.
pub struct ChaosProxyHandle {
    addr: String,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    shared: Arc<ProxyShared>,
}

impl ChaosProxyHandle {
    /// The address clients should connect to instead of the daemon.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// What the proxy has observed so far (live counters; call after
    /// [`Self::stop`] for a final tally).
    #[must_use]
    pub fn outcome(&self) -> ChaosOutcome {
        ChaosOutcome {
            planned_faults: self.shared.planned_faults.load(Ordering::SeqCst),
            unexpected_errors: self.shared.unexpected_errors.load(Ordering::SeqCst),
            injected_delays: self.shared.injected_delays.load(Ordering::SeqCst),
        }
    }

    /// Stops accepting new connections (live pumps die with their peers).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(&self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until the proxy stops.
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxyHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

struct ProxyShared {
    plan: FaultPlan,
    upstream: String,
    /// While set, the node is "dead": connections severed, connects refused.
    down_until: Mutex<Option<Instant>>,
    /// Transport faults fired as planned (drop / truncate / kill).
    planned_faults: AtomicU64,
    /// Non-`UnsupportedVersion` error replies seen heading to the client.
    unexpected_errors: AtomicU64,
    /// Frames held back with an injected delay.
    injected_delays: AtomicU64,
    /// The plan's one-shot drop has fired.
    dropped_once: AtomicBool,
}

impl ProxyShared {
    fn blacked_out(&self) -> bool {
        let mut down = self.down_until.lock().unwrap_or_else(|e| e.into_inner());
        match *down {
            Some(until) if Instant::now() < until => true,
            Some(_) => {
                *down = None;
                false
            }
            None => false,
        }
    }

    fn black_out(&self) {
        let ms = self.plan.blackout_ms.max(50);
        let mut down = self.down_until.lock().unwrap_or_else(|e| e.into_inner());
        *down = Some(Instant::now() + Duration::from_millis(ms));
    }
}

/// Starts a frame-aware TCP proxy on `listen_addr` forwarding to
/// `upstream`, injecting `plan`'s transport faults. The daemon behind it
/// is untouched — this is the "hostile network / dying node" half of the
/// chaos harness, usable against any running daemon (CLI: `pf chaos`).
pub fn chaos_proxy(
    listen_addr: &str,
    upstream: &str,
    plan: FaultPlan,
) -> std::io::Result<ChaosProxyHandle> {
    let listener = TcpListener::bind(listen_addr)?;
    let addr = listener.local_addr()?.to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(ProxyShared {
        plan,
        upstream: upstream.to_string(),
        down_until: Mutex::new(None),
        planned_faults: AtomicU64::new(0),
        unexpected_errors: AtomicU64::new(0),
        injected_delays: AtomicU64::new(0),
        dropped_once: AtomicBool::new(false),
    });
    let accept_stop = Arc::clone(&stop);
    let accept_shared = Arc::clone(&shared);
    let accept_thread =
        std::thread::Builder::new().name("pf-chaos-accept".into()).spawn(move || {
            for client in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = client else { break };
                let shared = Arc::clone(&accept_shared);
                let _ = std::thread::Builder::new()
                    .name("pf-chaos-conn".into())
                    .spawn(move || proxy_connection(client, shared));
            }
        })?;
    Ok(ChaosProxyHandle { addr, stop, accept_thread: Some(accept_thread), shared })
}

/// Pumps one proxied connection in both directions, frame by frame.
fn proxy_connection(client: TcpStream, shared: Arc<ProxyShared>) {
    if shared.blacked_out() {
        return; // node is "down": sever immediately
    }
    let Ok(server) = TcpStream::connect(&shared.upstream) else {
        return;
    };
    client.set_nodelay(true).ok();
    server.set_nodelay(true).ok();
    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let c2s = std::thread::Builder::new().name("pf-chaos-c2s".into()).spawn({
        let shared = Arc::clone(&shared);
        move || pump(client_r, server, &shared, Direction::ClientToServer)
    });
    // Server→client pump runs on this thread.
    let s2c_result = pump(server_r, client, &shared, Direction::ServerToClient);
    if let Ok(handle) = c2s {
        let c2s_result = handle.join().unwrap_or(PumpEnd::Closed);
        if matches!(c2s_result, PumpEnd::Killed) || matches!(s2c_result, PumpEnd::Killed) {
            shared.black_out();
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PumpEnd {
    Closed,
    Faulted,
    Killed,
}

/// Forwards frames from `src` to `dst`, applying the plan's faults for
/// `dir`. Returns how the pump ended; faults it fires and unexplained
/// error replies it forwards are tallied in `shared`.
fn pump(mut src: TcpStream, mut dst: TcpStream, shared: &ProxyShared, dir: Direction) -> PumpEnd {
    let plan = &shared.plan;
    let fault_fired = || {
        shared.planned_faults.fetch_add(1, Ordering::SeqCst);
    };
    let mut frames = 0u64;
    loop {
        let mut len_buf = [0u8; 4];
        if src.read_exact(&mut len_buf).is_err() {
            let _ = dst.shutdown(std::net::Shutdown::Both);
            return PumpEnd::Closed;
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut body = vec![0u8; len];
        if src.read_exact(&mut body).is_err() {
            let _ = dst.shutdown(std::net::Shutdown::Both);
            return PumpEnd::Closed;
        }
        frames += 1;

        if dir == Direction::ServerToClient {
            // Sniff replies for protocol errors the plan does not explain.
            // Reply body: ver:u8 | op:u8 | request:u64 | payload, with an
            // error payload leading with its u16 code. `UnsupportedVersion`
            // (wire id 1) is the legitimate fallback handshake, not a bug.
            if body.len() >= 12 && body[1] == crate::wire::op::R_ERROR {
                let code = u16::from_le_bytes([body[10], body[11]]);
                if code != 1 {
                    shared.unexpected_errors.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        if dir == Direction::ClientToServer {
            if let Some((every, millis)) = plan.delay {
                if every > 0 && frames % every == 0 {
                    shared.injected_delays.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(millis));
                }
            }
            if let Some(kill_at) = plan.kill_after_frames {
                if frames >= kill_at {
                    let _ = src.shutdown(std::net::Shutdown::Both);
                    let _ = dst.shutdown(std::net::Shutdown::Both);
                    fault_fired();
                    return PumpEnd::Killed;
                }
            }
            if let Some(drop_at) = plan.drop_after_frames {
                if frames >= drop_at {
                    let _ = src.shutdown(std::net::Shutdown::Both);
                    let _ = dst.shutdown(std::net::Shutdown::Both);
                    fault_fired();
                    return PumpEnd::Faulted;
                }
            }
            if let Some(drop_at) = plan.drop_once_after_frames {
                if frames >= drop_at && !shared.dropped_once.swap(true, Ordering::SeqCst) {
                    let _ = src.shutdown(std::net::Shutdown::Both);
                    let _ = dst.shutdown(std::net::Shutdown::Both);
                    fault_fired();
                    return PumpEnd::Faulted;
                }
            }
        }
        if let Some(t) = plan.truncate {
            if t.dir == dir && frames == t.frame {
                // Forward the length prefix and `keep` body bytes, then
                // sever: the receiver sees a torn frame.
                let keep = (t.keep as usize).min(body.len());
                let _ = dst.write_all(&len_buf);
                let _ = dst.write_all(&body[..keep]);
                let _ = dst.flush();
                let _ = src.shutdown(std::net::Shutdown::Both);
                let _ = dst.shutdown(std::net::Shutdown::Both);
                fault_fired();
                return PumpEnd::Faulted;
            }
        }
        if dst.write_all(&len_buf).and_then(|()| dst.write_all(&body)).is_err() {
            let _ = src.shutdown(std::net::Shutdown::Both);
            return PumpEnd::Closed;
        }
        let _ = dst.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_cover_all_families() {
        for seed in 0..64u64 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        }
        let mut families = [false; 6];
        for seed in 0..64u64 {
            let p = FaultPlan::from_seed(seed);
            if p.drop_after_frames.is_some() {
                families[0] = true;
            } else if p.truncate.is_some() {
                families[1] = true;
            } else if p.fail_flush > 0 {
                families[2] = true;
            } else if p.kill_after_frames.is_some() {
                families[3] = true;
            } else if p.torn_write.is_some() {
                families[4] = true;
            } else if p.delay.is_some() {
                families[5] = true;
            }
        }
        assert!(families.iter().all(|&f| f), "64 seeds cover every fault family: {families:?}");
    }

    #[test]
    fn parse_accepts_seeds_and_named_families() {
        assert_eq!(FaultPlan::parse("42").unwrap(), FaultPlan::from_seed(42));
        assert_eq!(FaultPlan::parse("kill:7").unwrap(), FaultPlan::kill_one_node(7));
        assert_eq!(FaultPlan::parse("truncate:7").unwrap(), FaultPlan::truncate_frame(7));
        assert_eq!(FaultPlan::parse("flush:7").unwrap(), FaultPlan::fail_flush(7));
        assert_eq!(FaultPlan::parse("drop:7").unwrap(), FaultPlan::drop_connection(7));
        assert_eq!(FaultPlan::parse("torn:7").unwrap(), FaultPlan::torn_write(7));
        assert_eq!(FaultPlan::parse("delay:7").unwrap(), FaultPlan::injected_delay(7));
        assert!(FaultPlan::parse("bogus:7").is_err());
        assert!(FaultPlan::parse("kill:x").is_err());
    }

    #[test]
    fn injector_fires_each_fault_exactly_as_planned() {
        // Flush failures are consumed one at a time.
        let inj = FaultInjector::new(FaultPlan { fail_flush: 2, ..FaultPlan::none() });
        assert!(inj.on_flush());
        assert!(inj.on_flush());
        assert!(!inj.on_flush(), "only the planned number of flushes fail");

        // Drop fires on the connection's Nth frame.
        let inj = FaultInjector::new(FaultPlan { drop_after_frames: Some(3), ..FaultPlan::none() });
        assert_eq!(inj.on_frame(1), FrameFault::None);
        assert_eq!(inj.on_frame(2), FrameFault::None);
        assert_eq!(inj.on_frame(3), FrameFault::Drop);

        // Kill fires once on the global count, then reports killed.
        let inj = FaultInjector::new(FaultPlan { kill_after_frames: Some(2), ..FaultPlan::none() });
        assert_eq!(inj.on_frame(1), FrameFault::None);
        assert_eq!(inj.on_frame(1), FrameFault::Kill);
        assert!(inj.killed());

        // Torn write fires exactly once.
        let inj = FaultInjector::new(FaultPlan { torn_write: Some(2), ..FaultPlan::none() });
        assert!(!inj.on_write_torn());
        assert!(inj.on_write_torn());
        assert!(!inj.on_write_torn(), "a torn-write crash fires at most once");

        // The one-shot drop fires on one connection, then never again —
        // even for a fresh connection that reaches the same frame count.
        let inj =
            FaultInjector::new(FaultPlan { drop_once_after_frames: Some(2), ..FaultPlan::none() });
        assert_eq!(inj.on_frame(1), FrameFault::None);
        assert_eq!(inj.on_frame(2), FrameFault::Drop);
        assert_eq!(inj.on_frame(2), FrameFault::None, "a one-shot drop never repeats");
        assert_eq!(inj.on_frame(3), FrameFault::None);
    }

    /// A throwaway upstream that answers every frame with a canned reply
    /// body (prefixed with its length), then keeps serving until the peer
    /// hangs up. Returns its address.
    fn canned_upstream(reply_body: Vec<u8>) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let addr = listener.local_addr().expect("upstream addr").to_string();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut conn) = conn else { break };
                let reply = reply_body.clone();
                std::thread::spawn(move || loop {
                    let mut len_buf = [0u8; 4];
                    if conn.read_exact(&mut len_buf).is_err() {
                        return;
                    }
                    let mut body = vec![0u8; u32::from_le_bytes(len_buf) as usize];
                    if conn.read_exact(&mut body).is_err() {
                        return;
                    }
                    let n = u32::try_from(reply.len()).expect("reply fits a frame");
                    if conn.write_all(&n.to_le_bytes()).is_err() || conn.write_all(&reply).is_err()
                    {
                        return;
                    }
                });
            }
        });
        addr
    }

    /// Frames one raw request through `addr` and tries to read one reply.
    fn send_frame(addr: &str, body: &[u8]) -> Option<Vec<u8>> {
        let mut s = TcpStream::connect(addr).ok()?;
        let n = u32::try_from(body.len()).expect("body fits a frame");
        s.write_all(&n.to_le_bytes()).ok()?;
        s.write_all(body).ok()?;
        let mut len_buf = [0u8; 4];
        s.read_exact(&mut len_buf).ok()?;
        let mut reply = vec![0u8; u32::from_le_bytes(len_buf) as usize];
        s.read_exact(&mut reply).ok()?;
        Some(reply)
    }

    /// A minimal reply body: ver | op | request:u64 | payload.
    fn reply_body(op_byte: u8, payload: &[u8]) -> Vec<u8> {
        let mut b = vec![3u8, op_byte];
        b.extend_from_slice(&7u64.to_le_bytes());
        b.extend_from_slice(payload);
        b
    }

    #[test]
    fn chaos_outcome_counts_planned_faults() {
        let upstream = canned_upstream(reply_body(crate::wire::op::R_PONG, &[]));
        let plan = FaultPlan { drop_after_frames: Some(1), ..FaultPlan::none() };
        let mut proxy = chaos_proxy("127.0.0.1:0", &upstream, plan).expect("proxy");
        // Frame 1 trips the drop fault: the connection severs unreplied.
        assert_eq!(send_frame(proxy.addr(), &reply_body(0x01, &[])), None);
        proxy.stop();
        let outcome = proxy.outcome();
        assert_eq!(outcome.planned_faults, 1, "{outcome:?}");
        assert_eq!(outcome.unexpected_errors, 0, "{outcome:?}");
    }

    #[test]
    fn chaos_outcome_counts_unexpected_errors_but_not_version_fallback() {
        // An error reply with code 9 (not UnsupportedVersion) is unexpected…
        let upstream = canned_upstream(reply_body(crate::wire::op::R_ERROR, &9u16.to_le_bytes()));
        let mut proxy = chaos_proxy("127.0.0.1:0", &upstream, FaultPlan::none()).expect("proxy");
        assert!(send_frame(proxy.addr(), &reply_body(0x01, &[])).is_some());
        proxy.stop();
        let outcome = proxy.outcome();
        assert_eq!(outcome.planned_faults, 0, "{outcome:?}");
        assert_eq!(outcome.unexpected_errors, 1, "{outcome:?}");

        // …while code 1 (UnsupportedVersion) is the fallback handshake.
        let upstream = canned_upstream(reply_body(crate::wire::op::R_ERROR, &1u16.to_le_bytes()));
        let mut proxy = chaos_proxy("127.0.0.1:0", &upstream, FaultPlan::none()).expect("proxy");
        assert!(send_frame(proxy.addr(), &reply_body(0x01, &[])).is_some());
        proxy.stop();
        assert_eq!(proxy.outcome(), ChaosOutcome::default());
    }

    #[test]
    fn chaos_outcome_counts_injected_delays() {
        let upstream = canned_upstream(reply_body(crate::wire::op::R_PONG, &[]));
        let plan = FaultPlan { delay: Some((1, 5)), ..FaultPlan::none() };
        let mut proxy = chaos_proxy("127.0.0.1:0", &upstream, plan).expect("proxy");
        // Delays hold frames back but every request still gets its reply.
        assert!(send_frame(proxy.addr(), &reply_body(0x01, &[])).is_some());
        assert!(send_frame(proxy.addr(), &reply_body(0x01, &[])).is_some());
        proxy.stop();
        let outcome = proxy.outcome();
        assert_eq!(outcome.injected_delays, 2, "{outcome:?}");
        assert_eq!(outcome.planned_faults, 0, "{outcome:?}");
        assert_eq!(outcome.unexpected_errors, 0, "{outcome:?}");
    }

    #[test]
    fn transport_fault_classification() {
        assert!(FaultPlan::drop_connection(1).plans_transport_fault());
        assert!(FaultPlan::truncate_frame(1).plans_transport_fault());
        assert!(FaultPlan::kill_one_node(1).plans_transport_fault());
        assert!(!FaultPlan::fail_flush(1).plans_transport_fault());
        assert!(!FaultPlan::torn_write(1).plans_transport_fault());
        // A delay is latency, not a transport fault: nothing severs.
        assert!(!FaultPlan::injected_delay(1).plans_transport_fault());
        assert!(!FaultPlan::none().plans_transport_fault());
    }

    #[test]
    fn disarmed_crashes_keep_transport_faults() {
        let plan = FaultPlan {
            drop_after_frames: Some(4),
            kill_after_frames: Some(3),
            torn_write: Some(1),
            ..FaultPlan::none()
        };
        let disarmed = plan.disarmed_crashes();
        assert_eq!(disarmed.kill_after_frames, None);
        assert_eq!(disarmed.torn_write, None);
        assert_eq!(disarmed.drop_after_frames, Some(4));
    }
}
