//! Typed per-session protocol state machines.
//!
//! The version-negotiation, chunk-window, and chunk-stream rules used to
//! live as inline arithmetic in [`client`](crate::client) and
//! [`server`](crate::server). This module lifts them into small explicit
//! automata with value semantics (`Clone + Eq + Hash`), so that
//!
//! * the client and server *drive* their wire behavior through the same
//!   types the `parafile-model` checker explores exhaustively — the
//!   checked specification is the shipped code, not a parallel copy;
//! * every illegal transition is a typed [`ProtoViolation`] instead of an
//!   ad-hoc boolean, so callers must decide what a violation means on
//!   their side of the wire (client: broken connection; server: typed
//!   `Malformed` reply).
//!
//! Three automata cover the session lifecycle (DESIGN.md §14):
//!
//! * [`Negotiation`] — the client's protocol-version ladder (start at
//!   [`PROTOCOL_VERSION`], step down one on `UnsupportedVersion`);
//! * [`ChunkSender`] — the client's bounded in-flight window over a
//!   `WriteChunk` stream;
//! * [`WriteStream`] — the server's continuation/consistency discipline
//!   over an incoming chunk stream.

use crate::wire::{MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};

/// An illegal protocol-automaton transition.
///
/// Guards ([`ChunkSender::next_to_send`], [`WriteStream::continues`])
/// exist so well-behaved peers never construct one; the violations are
/// what the automata answer when a guard is bypassed — by a hostile peer,
/// a transport fault, or a deliberately mutated model run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtoViolation {
    /// An acknowledgment arrived for a chunk that was never sent.
    AckWithoutSend,
    /// A non-initial chunk frame does not continue the in-progress stream.
    NotContinuation,
    /// A chunk's data would push the stream past its declared total.
    Overrun,
    /// The final chunk leaves the stream short of its declared total.
    ShortFinal,
}

impl std::fmt::Display for ProtoViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoViolation::AckWithoutSend => f.write_str("acknowledgment without a sent chunk"),
            ProtoViolation::NotContinuation => {
                f.write_str("write chunk does not continue the in-progress stream")
            }
            ProtoViolation::Overrun => f.write_str("chunk overruns the declared total"),
            ProtoViolation::ShortFinal => f.write_str("final chunk leaves the stream short"),
        }
    }
}

// ---------------------------------------------------------------------------
// Version negotiation (client side)

/// The client's protocol-version ladder.
///
/// A client opens every peer optimistically at [`PROTOCOL_VERSION`]. Each
/// `UnsupportedVersion` answer steps the ladder down one rung; the floor
/// is [`MIN_PROTOCOL_VERSION`]. The negotiated version is sticky for the
/// client's lifetime — the automaton only ever moves down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Negotiation {
    version: u8,
}

impl Negotiation {
    /// Starts at the newest protocol version this build speaks.
    #[must_use]
    pub fn new() -> Self {
        Self { version: PROTOCOL_VERSION }
    }

    /// Starts at a specific version (tests and model scenarios), clamped
    /// into the supported range.
    #[must_use]
    pub fn at(version: u8) -> Self {
        Self { version: version.clamp(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION) }
    }

    /// The version currently negotiated with the peer.
    #[must_use]
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Whether another downgrade step is available.
    #[must_use]
    pub fn can_downgrade(&self) -> bool {
        self.version > MIN_PROTOCOL_VERSION
    }

    /// Steps down one version. Returns `false` (and stays put) at the
    /// floor — the caller must surface the peer's rejection instead of
    /// retrying forever.
    #[must_use]
    pub fn downgrade(&mut self) -> bool {
        if self.can_downgrade() {
            self.version -= 1;
            true
        } else {
            false
        }
    }

    /// Whether the negotiated version streams chunked transfers (v3+).
    #[must_use]
    pub fn supports_chunking(&self) -> bool {
        self.version >= 3
    }

    /// Whether the negotiated version carries `(session, seq)` retry
    /// stamps (v2+).
    #[must_use]
    pub fn supports_stamps(&self) -> bool {
        self.version >= 2
    }

    /// Whether the negotiated version answers `ResumeQuery`, letting a
    /// retried chunked write continue mid-stream (v4+).
    #[must_use]
    pub fn supports_resume(&self) -> bool {
        self.version >= 4
    }

    /// Whether the negotiated version carries the per-request deadline
    /// prefix and the `Busy`/`Overloaded` shed replies (v5+).
    #[must_use]
    pub fn supports_deadlines(&self) -> bool {
        self.version >= 5
    }

    /// Whether the negotiated version carries the tenant id on `Open`,
    /// enabling per-tenant quotas and fair queueing at the daemon (v6+).
    #[must_use]
    pub fn supports_tenancy(&self) -> bool {
        self.version >= 6
    }
}

impl Default for Negotiation {
    fn default() -> Self {
        Self::new()
    }
}

/// Whether a daemon bounded at `max_version` admits a frame at `version`
/// (the server side of the negotiation ladder).
#[must_use]
pub fn version_admitted(version: u8, max_version: u8) -> bool {
    (MIN_PROTOCOL_VERSION..=max_version.min(PROTOCOL_VERSION)).contains(&version)
}

// ---------------------------------------------------------------------------
// Chunk-window automaton (client side)

/// What the sender should put on the wire next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkPlan {
    /// Zero-based chunk index (`offset = index * chunk_size`).
    pub index: u64,
    /// Whether this is the stream's final chunk.
    pub last: bool,
}

/// The client's bounded in-flight window over one `WriteChunk` stream.
///
/// The window invariant — at most `window` sent-but-unacknowledged chunks
/// — is what keeps a slow daemon from being buried under an unbounded
/// burst. [`next_to_send`](Self::next_to_send) is the *guard*:
/// it answers `None` while the window is full. [`record_send`]
/// (Self::record_send) is deliberately total (it counts the send even
/// past the window) so the model checker can drive a mutated client
/// through the guard and watch the invariant trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkSender {
    n_chunks: u64,
    window: u64,
    sent: u64,
    acked: u64,
}

impl ChunkSender {
    /// A window automaton for a stream of `n_chunks` chunks (at least 1)
    /// with `window` frames in flight (at least 1).
    #[must_use]
    pub fn new(n_chunks: u64, window: u64) -> Self {
        Self { n_chunks: n_chunks.max(1), window: window.max(1), sent: 0, acked: 0 }
    }

    /// Chunks sent but not yet acknowledged.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.sent - self.acked
    }

    /// Chunks recorded as sent so far (the next unsent chunk's index).
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// The window bound this automaton enforces.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The next chunk the window admits, or `None` when every chunk is
    /// sent or the window is full.
    #[must_use]
    pub fn next_to_send(&self) -> Option<ChunkPlan> {
        if self.sent >= self.n_chunks || self.in_flight() >= self.window {
            return None;
        }
        Some(ChunkPlan { index: self.sent, last: self.sent + 1 == self.n_chunks })
    }

    /// Records that the chunk from [`next_to_send`](Self::next_to_send)
    /// reached the wire. Total by design (see the type docs); the real
    /// client only calls it behind the guard.
    pub fn record_send(&mut self) {
        self.sent += 1;
    }

    /// Records one acknowledgment from the daemon.
    pub fn record_ack(&mut self) -> Result<(), ProtoViolation> {
        if self.acked >= self.sent {
            return Err(ProtoViolation::AckWithoutSend);
        }
        self.acked += 1;
        Ok(())
    }

    /// Whether every chunk has been sent.
    #[must_use]
    pub fn all_sent(&self) -> bool {
        self.sent >= self.n_chunks
    }

    /// Whether the stream is fully sent *and* fully acknowledged.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.all_sent() && self.acked == self.sent
    }

    /// The window invariant itself, as a predicate the model checker (and
    /// debug assertions) can evaluate on any reachable state.
    #[must_use]
    pub fn within_window(&self) -> bool {
        self.in_flight() <= self.window
    }
}

// ---------------------------------------------------------------------------
// Chunk-stream automaton (server side)

/// The identifying header of one `WriteChunk` frame, as the server-side
/// automaton sees it (payload bytes reduced to their length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkHeader {
    /// Target file id.
    pub file: u64,
    /// Issuing compute node.
    pub compute: u32,
    /// View interval left extremity.
    pub l_s: u64,
    /// View interval right extremity.
    pub r_s: u64,
    /// Retry-stamp session (0 = unstamped).
    pub session: u64,
    /// Retry-stamp sequence number.
    pub seq: u64,
    /// Byte offset of this chunk within the stream payload.
    pub offset: u64,
    /// Total payload bytes the stream declares.
    pub total: u64,
    /// Whether this is the final chunk.
    pub last: bool,
    /// This chunk's data length.
    pub len: u64,
}

/// How a legal chunk moved the stream forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamProgress {
    /// A middle chunk: acknowledge with `ChunkOk` and keep the stream.
    Middle,
    /// The final chunk: the stream is complete.
    Final,
}

/// The server's view of one in-progress chunked write.
///
/// Chunk frames of a logical write arrive back to back on one
/// connection. The automaton pins the stream identity (everything but
/// `offset`/`last`/`len` must repeat verbatim) and its arithmetic: chunks
/// are contiguous, never overrun the declared total, and the final chunk
/// lands exactly on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WriteStream {
    file: u64,
    compute: u32,
    l_s: u64,
    r_s: u64,
    session: u64,
    seq: u64,
    total: u64,
    received: u64,
}

impl WriteStream {
    /// Opens a stream from its first chunk's header (`offset` must be 0;
    /// the caller dispatches on it).
    #[must_use]
    pub fn start(h: &ChunkHeader) -> Self {
        Self {
            file: h.file,
            compute: h.compute,
            l_s: h.l_s,
            r_s: h.r_s,
            session: h.session,
            seq: h.seq,
            total: h.total,
            received: 0,
        }
    }

    /// Reopens a stream mid-way from a resumed chunk's header: identical to
    /// [`start`](Self::start) except the bytes up to `h.offset` are taken
    /// as already received. The caller (the daemon) must only do this when
    /// its own recorded progress for the stream's `(session, seq)` stamp
    /// equals `h.offset` — the automaton then enforces contiguity from
    /// there exactly as for a fresh stream.
    #[must_use]
    pub fn resume(h: &ChunkHeader) -> Self {
        Self { received: h.offset, ..Self::start(h) }
    }

    /// Whether `h` is the next frame of *this* stream: same identity, and
    /// its offset is exactly the bytes received so far.
    #[must_use]
    pub fn continues(&self, h: &ChunkHeader) -> bool {
        self.file == h.file
            && self.compute == h.compute
            && self.l_s == h.l_s
            && self.r_s == h.r_s
            && self.session == h.session
            && self.seq == h.seq
            && self.total == h.total
            && self.received == h.offset
    }

    /// Accepts one chunk, advancing the stream. The overrun/short-final
    /// checks run *before* any byte is accounted, so a rejected chunk
    /// leaves the automaton unchanged.
    pub fn accept(&mut self, h: &ChunkHeader) -> Result<StreamProgress, ProtoViolation> {
        let Some(after) = self.received.checked_add(h.len) else {
            return Err(ProtoViolation::Overrun);
        };
        if after > self.total {
            return Err(ProtoViolation::Overrun);
        }
        if h.last && after != self.total {
            return Err(ProtoViolation::ShortFinal);
        }
        self.received = after;
        Ok(if h.last { StreamProgress::Final } else { StreamProgress::Middle })
    }

    /// Payload bytes received so far (the next chunk's expected offset).
    #[must_use]
    pub fn received(&self) -> u64 {
        self.received
    }

    /// The stream's declared payload total.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The stream's `(session, seq)` retry stamp.
    #[must_use]
    pub fn stamp(&self) -> (u64, u64) {
        (self.session, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_walks_down_to_the_floor() {
        let mut neg = Negotiation::new();
        assert_eq!(neg.version(), PROTOCOL_VERSION);
        assert!(neg.supports_chunking() && neg.supports_stamps());
        let mut steps = 0;
        while neg.downgrade() {
            steps += 1;
            assert!(steps < 16, "ladder must terminate");
        }
        assert_eq!(neg.version(), MIN_PROTOCOL_VERSION);
        assert!(!neg.can_downgrade());
        assert!(!neg.downgrade(), "floor is sticky");
        assert!(!neg.supports_stamps());
    }

    #[test]
    fn version_admission_matches_the_ladder() {
        assert!(version_admitted(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION));
        assert!(version_admitted(PROTOCOL_VERSION, PROTOCOL_VERSION));
        assert!(!version_admitted(PROTOCOL_VERSION, 2), "capped daemon rejects v3");
        assert!(!version_admitted(0, PROTOCOL_VERSION));
        assert!(!version_admitted(PROTOCOL_VERSION + 1, PROTOCOL_VERSION + 5), "cap clamps");
    }

    #[test]
    fn window_blocks_at_capacity_and_drains() {
        let mut s = ChunkSender::new(5, 2);
        assert_eq!(s.next_to_send(), Some(ChunkPlan { index: 0, last: false }));
        s.record_send();
        s.record_send();
        assert_eq!(s.in_flight(), 2);
        assert_eq!(s.next_to_send(), None, "window full");
        assert!(s.within_window());
        s.record_ack().expect("one in flight");
        assert_eq!(s.next_to_send(), Some(ChunkPlan { index: 2, last: false }));
        for _ in 0..3 {
            s.record_send();
            s.record_ack().expect("drain");
        }
        s.record_ack().expect("final ack");
        assert!(s.is_complete());
        assert_eq!(s.record_ack(), Err(ProtoViolation::AckWithoutSend));
    }

    #[test]
    fn final_chunk_is_flagged() {
        let s = ChunkSender::new(1, 4);
        assert_eq!(s.next_to_send(), Some(ChunkPlan { index: 0, last: true }));
    }

    fn header(offset: u64, len: u64, last: bool) -> ChunkHeader {
        ChunkHeader {
            file: 1,
            compute: 2,
            l_s: 0,
            r_s: 99,
            session: 7,
            seq: 3,
            offset,
            total: 10,
            last,
            len,
        }
    }

    #[test]
    fn stream_accepts_contiguous_chunks() {
        let mut ws = WriteStream::start(&header(0, 4, false));
        assert_eq!(ws.accept(&header(0, 4, false)), Ok(StreamProgress::Middle));
        assert!(ws.continues(&header(4, 4, false)));
        assert_eq!(ws.accept(&header(4, 4, false)), Ok(StreamProgress::Middle));
        assert_eq!(ws.accept(&header(8, 2, true)), Ok(StreamProgress::Final));
        assert_eq!(ws.received(), ws.total());
        assert_eq!(ws.stamp(), (7, 3));
    }

    #[test]
    fn stream_rejects_gaps_overruns_and_short_finals() {
        let mut ws = WriteStream::start(&header(0, 4, false));
        ws.accept(&header(0, 4, false)).expect("first chunk");
        // A gap (wrong offset) is not a continuation.
        assert!(!ws.continues(&header(6, 2, false)));
        // A different stream identity is not a continuation either.
        let mut other = header(4, 2, false);
        other.seq = 99;
        assert!(!ws.continues(&other));
        // Overrun: 4 received + 8 > 10 declared.
        assert_eq!(ws.accept(&header(4, 8, false)), Err(ProtoViolation::Overrun));
        assert_eq!(ws.received(), 4, "rejected chunk leaves the stream unchanged");
        // Short final: 4 + 2 < 10.
        assert_eq!(ws.accept(&header(4, 2, true)), Err(ProtoViolation::ShortFinal));
        assert_eq!(ws.received(), 4);
    }

    #[test]
    fn resumed_stream_continues_from_its_offset() {
        // A retried stream resuming at offset 4 accepts 4.. and rejects a
        // restart at 0 (that would be a different continuation).
        let ws = WriteStream::resume(&header(4, 4, false));
        assert_eq!(ws.received(), 4);
        assert!(ws.continues(&header(4, 4, false)));
        assert!(!ws.continues(&header(0, 4, false)));
        let mut ws = ws;
        assert_eq!(ws.accept(&header(4, 4, false)), Ok(StreamProgress::Middle));
        assert_eq!(ws.accept(&header(8, 2, true)), Ok(StreamProgress::Final));
        assert_eq!(ws.received(), ws.total());
    }

    #[test]
    fn stream_overflow_is_an_overrun_not_a_wrap() {
        let mut h = header(0, 4, false);
        h.total = u64::MAX;
        let mut ws = WriteStream::start(&h);
        ws.received = u64::MAX - 1;
        let mut big = h;
        big.len = u64::MAX;
        assert_eq!(ws.accept(&big), Err(ProtoViolation::Overrun));
    }
}
