//! Multiplexed session transport: one reactor thread drives every node.
//!
//! The session used to dedicate a worker thread (plus a bounded queue) to
//! each I/O node; a fan-out across N nodes cost N parked threads and each
//! connection carried at most one request at a time. This module replaces
//! that with a single driver thread owning a [`Reactor`]: every warm node
//! connection is registered non-blocking under its node index, requests
//! are pipelined — many in flight per connection, replies matched FIFO by
//! request id — and all timing (retry backoff, shed hints, response
//! timeouts) runs on the reactor's [`TimerWheel`] instead of parked
//! threads (DESIGN.md §17).
//!
//! The per-request state machine reproduces `NodeClient::call`'s retry
//! ladder: capped-jittered backoff spending from the session
//! [`RetryBudget`], deadline vetoes before every (re)send, a request that
//! dies on a fresh connection resetting its backoff, `Busy`/`Overloaded`
//! sheds retried after their hinted delay, transparent
//! `UnsupportedVersion` downgrade (guarded so a burst of pipelined
//! rejections downgrades once), the one-time `Ping` capability probe, and
//! chunked `WriteChunk` streams with windowed acks and `ResumeQuery`
//! fast-forward. One deliberate simplification: reads are sent
//! monolithically (no `ReadChunk` reassembly) — correctness-identical,
//! bounded by the same frame cap as `Fetch`.
//!
//! Ordering: the old workers serialized each node's requests end-to-end;
//! the mux pipelines them but *stalls the queue* whenever the head request
//! is parked for a retry, so cross-request reordering is confined to
//! requests already on the wire when a connection fails — DESIGN.md §17
//! argues why the session's invariants tolerate that window.

use crate::backoff::Backoff;
use crate::client::{NodeClient, RetryPolicy, CHUNK_WINDOW};
use crate::error::{ErrCode, NetError, ProtocolError};
use crate::proto::{ChunkSender, Negotiation};
use crate::reactor::{Clock, Event, Interest, MonotonicClock, Reactor, TimerId, TimerWheel, Waker};
use crate::resilience::{Deadline, RetryBudget};
use crate::server::NetStream;
use crate::wire::{
    self, Reply, Request, DEFAULT_MAX_FRAME, HEADER_LEN, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a sent request may wait for its reply before the connection
/// is declared dead (mirrors the old per-connection 30 s read timeout).
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

/// Socket read granularity.
const READ_CHUNK: usize = 64 * 1024;

/// The receive half a submitter blocks on: the same shape the session's
/// collectors always consumed (capacity-1 channel, one terminal result).
pub type ReplySlot = Receiver<Result<Reply, NetError>>;

/// The error surfaced when the driver thread is gone (spawn failure,
/// panic, or shutdown) — the transport-level analogue of the old "worker
/// thread panicked".
pub(crate) fn mux_lost(node: usize) -> NetError {
    NetError::Io(std::io::Error::other(format!("node {node} transport driver is gone")))
}

fn deadline_error() -> NetError {
    NetError::Protocol(ProtocolError::new(
        ErrCode::DeadlineExceeded,
        "deadline expired on the client before the request could be (re)sent",
    ))
}

/// Rounds a duration up to whole milliseconds (so sub-ms waits stay waits).
fn dur_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX).max(u64::from(!d.is_zero()))
}

// ---------------------------------------------------------------------------
// Session-facing handle

/// One submitted request on its way to the driver.
struct Job {
    node: usize,
    request: Request,
    tx: SyncSender<Result<Reply, NetError>>,
    /// Per-job deadline override ([`Mux::submit_with`]); `None` follows
    /// the mux-wide deadline set by [`Mux::set_deadline`].
    deadline: Option<Deadline>,
    /// Per-job retry budget override; `None` spends from the budget the
    /// mux was built with. Lets many sessions share one driver while
    /// keeping their retry economies isolated.
    budget: Option<Arc<RetryBudget>>,
}

/// State shared between the session-facing handle and the driver thread.
struct Control {
    jobs: VecDeque<Job>,
    /// Results of blocking connects performed on helper threads.
    connected: Vec<(usize, std::io::Result<NetStream>)>,
    /// Nodes whose warm connection the session wants torn down.
    resets: Vec<usize>,
    deadline: Deadline,
}

struct MuxShared {
    control: Mutex<Control>,
    stopping: AtomicBool,
    /// Set when the driver thread has exited (cleanly or by panic):
    /// submits fail fast instead of queueing into the void.
    dead: AtomicBool,
    /// Per-node fault hooks: the next job for an armed node fails with an
    /// I/O error and resets the connection (test stand-in for the old
    /// worker-thread `panic_next`).
    kill_next: Vec<AtomicBool>,
    budget: Arc<RetryBudget>,
    waker: Option<Waker>,
}

impl MuxShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, Control> {
        self.control.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn wake(&self) {
        if let Some(w) = &self.waker {
            w.wake();
        }
    }
}

/// Clears the driver's shared state when its thread exits for any reason
/// (including a panic), so submitters see a disconnect instead of
/// blocking on a slot nobody will fill.
struct DriverFinalizer {
    shared: Arc<MuxShared>,
}

impl Drop for DriverFinalizer {
    fn drop(&mut self) {
        self.shared.dead.store(true, Ordering::SeqCst);
        let mut ctl = self.shared.lock();
        ctl.jobs.clear(); // dropping each Job's tx disconnects its ReplySlot
        ctl.connected.clear();
        ctl.resets.clear();
    }
}

/// The multiplexed transport: submit requests for any node, collect each
/// reply from its [`ReplySlot`]. One instance serves a whole session.
pub struct Mux {
    shared: Arc<MuxShared>,
    driver: Option<JoinHandle<()>>,
}

impl Mux {
    /// Spawns the driver thread for `addrs` (index = node number). If the
    /// reactor cannot be built the mux comes up dead and every submit
    /// fails with an I/O error — the session's failover paths treat that
    /// like any unreachable transport.
    #[must_use]
    pub fn new(addrs: &[String], budget: Arc<RetryBudget>) -> Self {
        let mut shared = MuxShared {
            control: Mutex::new(Control {
                jobs: VecDeque::new(),
                connected: Vec::new(),
                resets: Vec::new(),
                deadline: Deadline::none(),
            }),
            stopping: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            kill_next: addrs.iter().map(|_| AtomicBool::new(false)).collect(),
            budget,
            waker: None,
        };
        let reactor = Reactor::new().ok();
        if let Some(r) = &reactor {
            shared.waker = Some(r.waker());
        }
        let shared = Arc::new(shared);
        let driver = reactor.and_then(|reactor| {
            let sh = Arc::clone(&shared);
            let addrs = addrs.to_vec();
            std::thread::Builder::new()
                .name("pf-mux".into())
                .spawn(move || {
                    let _finalizer = DriverFinalizer { shared: Arc::clone(&sh) };
                    Driver::new(sh, reactor, addrs).run();
                })
                .ok()
        });
        if driver.is_none() {
            shared.dead.store(true, Ordering::SeqCst);
        }
        Mux { shared, driver }
    }

    /// Queues `request` for `node`, returning the slot its single
    /// terminal result will arrive on. Never blocks: in-flight depth is
    /// bounded by the daemon's admission control, not a client queue.
    pub fn submit(&self, node: usize, request: Request) -> Result<ReplySlot, NetError> {
        self.submit_opt(node, request, None, None)
    }

    /// Like [`submit`](Self::submit), but with this job's own deadline
    /// and retry budget — the shared-pool path, where many sessions ride
    /// one driver and each must keep its own resilience envelope.
    pub fn submit_with(
        &self,
        node: usize,
        request: Request,
        deadline: Deadline,
        budget: Arc<RetryBudget>,
    ) -> Result<ReplySlot, NetError> {
        self.submit_opt(node, request, Some(deadline), Some(budget))
    }

    fn submit_opt(
        &self,
        node: usize,
        request: Request,
        deadline: Option<Deadline>,
        budget: Option<Arc<RetryBudget>>,
    ) -> Result<ReplySlot, NetError> {
        if self.shared.dead.load(Ordering::SeqCst) || self.shared.stopping.load(Ordering::SeqCst) {
            return Err(mux_lost(node));
        }
        if node >= self.shared.kill_next.len() {
            return Err(NetError::Usage(format!("node {node} out of range")));
        }
        let (tx, rx) = mpsc::sync_channel(1);
        self.shared.lock().jobs.push_back(Job { node, request, tx, deadline, budget });
        self.shared.wake();
        Ok(rx)
    }

    /// Number of nodes this mux drives (its address-list arity).
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.shared.kill_next.len()
    }

    /// Propagates the session deadline: vetoes future (re)sends and
    /// clamps in-flight response timeouts, like the per-client deadline.
    pub fn set_deadline(&self, deadline: Deadline) {
        self.shared.lock().deadline = deadline;
        self.shared.wake();
    }

    /// Drops `node`'s warm connection; in-flight requests ride the
    /// normal connection-failure retry ladder.
    pub fn reset_node(&self, node: usize) {
        if node < self.shared.kill_next.len() {
            self.shared.lock().resets.push(node);
            self.shared.wake();
        }
    }

    /// Arms a one-shot fault: the next request submitted for `node` fails
    /// with an I/O error and the node's connection is reset. Test hook,
    /// successor of the worker-thread `panic_next` flag.
    pub fn arm_kill(&self, node: usize) {
        if let Some(flag) = self.shared.kill_next.get(node) {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Whether the driver thread is still alive.
    #[must_use]
    pub fn alive(&self) -> bool {
        !self.shared.dead.load(Ordering::SeqCst)
    }
}

impl Drop for Mux {
    fn drop(&mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.wake();
        if let Some(h) = self.driver.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Driver-side state

/// Why a frame was sent: decides how its reply (or its loss) is handled.
enum Kind {
    /// An ordinary submitted request; its terminal result settles a slot.
    Plain,
    /// The one-time `Ping` capability probe; stalls the queue until
    /// answered, failures land on the queue head that wanted it.
    Probe,
    /// A `ResumeQuery` for the active write stream.
    Resume,
    /// One `WriteChunk` of the active write stream.
    Chunk {
        /// Whether this chunk closes the stream (answered by `WriteOk`).
        last: bool,
    },
}

/// One request the driver owes an answer for (queued or on the wire).
struct Pending {
    serial: u64,
    request: Request,
    tx: Option<SyncSender<Result<Reply, NetError>>>,
    kind: Kind,
    /// Attempts consumed so far; the request fails at `attempts_max`.
    attempt: u32,
    attempts_max: u32,
    backoff: Backoff,
    sent_id: u64,
    sent_version: u8,
    expire: Option<TimerId>,
    /// This request's own deadline; `None` follows the mux-wide one.
    deadline: Option<Deadline>,
    /// This request's own retry budget; `None` spends the mux-wide one.
    budget: Option<Arc<RetryBudget>>,
}

impl Pending {
    /// An internal frame (probe / resume / chunk): no slot, no retries of
    /// its own — failures are charged to the request it serves, whose
    /// deadline and budget it inherits.
    fn internal(
        serial: u64,
        request: Request,
        kind: Kind,
        backoff: Backoff,
        deadline: Option<Deadline>,
        budget: Option<Arc<RetryBudget>>,
    ) -> Self {
        Pending {
            serial,
            request,
            tx: None,
            kind,
            attempt: 0,
            attempts_max: 1,
            backoff,
            sent_id: 0,
            sent_version: 0,
            expire: None,
            deadline,
            budget,
        }
    }
}

/// Settles a pending's terminal result and cancels its response timer.
fn settle(wheel: &mut TimerWheel<Timed>, mut p: Pending, result: Result<Reply, NetError>) {
    if let Some(t) = p.expire.take() {
        let _ = wheel.cancel(t);
    }
    if let Some(tx) = p.tx.take() {
        let _ = tx.send(result); // a dropped slot is a caller that stopped caring
    }
}

/// An in-progress chunked write: owns the head request while its chunks
/// stream; the queue stalls behind it (one stream per connection).
struct StreamState {
    req: Pending,
    /// `None` while the `ResumeQuery` round-trip is outstanding.
    sender: Option<ChunkSender>,
    /// Whole chunks fast-forwarded past by a `ResumeAt` answer.
    skip: u64,
    chunk: usize,
    total: u64,
    n_chunks: u64,
}

enum ConnState {
    Idle,
    /// A helper thread is running the blocking connect.
    Connecting,
    Ready(NetStream),
}

/// Everything the driver tracks per node.
struct NodeMux {
    addr: String,
    seed: u64,
    conn: ConnState,
    /// True until the connection delivers its first reply — a request
    /// dying on a fresh connection resets its backoff (the peer is back;
    /// the widened schedule is stale).
    fresh: bool,
    negotiation: Negotiation,
    peer_max_chunk: Option<u32>,
    chunk_override: Option<u32>,
    resume_candidate: Option<(u64, u64)>,
    probe_inflight: bool,
    next_id: u64,
    max_frame: u32,
    /// Not yet on the wire, head first.
    queue: VecDeque<Pending>,
    /// On the wire awaiting replies, FIFO — the daemon answers in order.
    inflight: VecDeque<Pending>,
    stream: Option<StreamState>,
    /// `Some(epoch)` while the queue is parked for a retry/backoff wait;
    /// the matching `Resend` timer un-parks it.
    park: Option<u64>,
    park_seq: u64,
    rbuf: Vec<u8>,
    rpos: usize,
    wbuf: Vec<u8>,
    wstart: usize,
    interest: Interest,
    scratch: Vec<u8>,
}

impl NodeMux {
    fn new(addr: String) -> Self {
        let seed = NodeClient::addr_seed(&addr);
        NodeMux {
            addr,
            seed,
            conn: ConnState::Idle,
            fresh: true,
            negotiation: Negotiation::new(),
            peer_max_chunk: None,
            chunk_override: NodeClient::env_chunk(),
            resume_candidate: None,
            probe_inflight: false,
            next_id: 1,
            max_frame: DEFAULT_MAX_FRAME,
            queue: VecDeque::new(),
            inflight: VecDeque::new(),
            stream: None,
            park: None,
            park_seq: 0,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wstart: 0,
            interest: Interest::READ,
            scratch: Vec::new(),
        }
    }

    /// The chunk data size to use against this peer right now (`0` =
    /// send monolithic) — same derivation as `NodeClient`.
    fn effective_chunk(&self) -> u32 {
        if !self.negotiation.supports_chunking() || self.chunk_override == Some(0) {
            return 0;
        }
        let cap = self.peer_max_chunk.unwrap_or(0);
        if cap == 0 {
            return 0;
        }
        let want = self.chunk_override.unwrap_or(cap).min(cap);
        want.clamp(1, self.max_frame.saturating_sub(64).max(1))
    }

    fn pending_bytes(&self) -> usize {
        self.wbuf.len() - self.wstart
    }
}

/// Timer payloads.
enum Timed {
    /// Un-park `node`'s queue (retry backoff or shed hint elapsed).
    Resend { node: usize, epoch: u64 },
    /// A sent request ran out of response time.
    Expire { node: usize, serial: u64 },
}

/// What `pump` decided to do next for a node.
enum Act {
    Done,
    Connect,
    Stream,
    Probe,
    StartStream(usize),
    SendHead,
    DropExpiredHead,
}

struct Driver {
    shared: Arc<MuxShared>,
    reactor: Reactor,
    clock: MonotonicClock,
    wheel: TimerWheel<Timed>,
    nodes: Vec<NodeMux>,
    deadline: Deadline,
    policy: RetryPolicy,
    serial: u64,
}

impl Driver {
    fn new(shared: Arc<MuxShared>, reactor: Reactor, addrs: Vec<String>) -> Self {
        Driver {
            shared,
            reactor,
            clock: MonotonicClock::new(),
            wheel: TimerWheel::new(),
            nodes: addrs.into_iter().map(NodeMux::new).collect(),
            deadline: Deadline::none(),
            policy: RetryPolicy::default(),
            serial: 0,
        }
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shared.stopping.load(Ordering::SeqCst) {
                return;
            }
            let timeout = self.wheel.until_next(self.clock.now_ms()).map(Duration::from_millis);
            if self.reactor.poll(&mut events, timeout).is_err() {
                self.fail_all("reactor poll failed");
                return;
            }
            if self.shared.stopping.load(Ordering::SeqCst) {
                return;
            }
            self.intake();
            let ready = std::mem::take(&mut events);
            for ev in &ready {
                let n = ev.token;
                if n >= self.nodes.len() {
                    continue;
                }
                if ev.readable || ev.error {
                    self.on_readable(n);
                }
                if ev.writable {
                    self.flush_node(n);
                }
            }
            events = ready;
            self.fire_timers();
        }
    }

    fn next_serial(&mut self) -> u64 {
        self.serial += 1;
        self.serial
    }

    /// The deadline governing `p`: its own, or the mux-wide default.
    fn deadline_of(&self, p: &Pending) -> Deadline {
        p.deadline.unwrap_or(self.deadline)
    }

    /// The retry budget `p` spends from: its own, or the mux-wide one.
    fn budget_of<'a>(&'a self, p: &'a Pending) -> &'a RetryBudget {
        p.budget.as_deref().unwrap_or(&self.shared.budget)
    }

    /// Drains the control queues: new jobs, connect results, resets, and
    /// the current deadline snapshot.
    fn intake(&mut self) {
        let (jobs, connected, resets, deadline) = {
            let mut ctl = self.shared.lock();
            (
                std::mem::take(&mut ctl.jobs),
                std::mem::take(&mut ctl.connected),
                std::mem::take(&mut ctl.resets),
                ctl.deadline,
            )
        };
        self.deadline = deadline;
        for (n, result) in connected {
            self.on_connected(n, result);
        }
        for n in resets {
            if n < self.nodes.len() {
                self.fail_conn(n, "connection reset by the session");
            }
        }
        for job in jobs {
            let n = job.node;
            if self.shared.kill_next[n].swap(false, Ordering::SeqCst) {
                let _ = job.tx.send(Err(NetError::Io(std::io::Error::other(format!(
                    "node {n} request killed by fault hook"
                )))));
                self.fail_conn(n, "connection killed by fault hook");
                continue;
            }
            let serial = self.next_serial();
            let attempts_max =
                if job.request.retry_safe() { self.policy.attempts.max(1) } else { 1 };
            let backoff = self.policy.backoff(self.nodes[n].seed ^ serial);
            self.nodes[n].queue.push_back(Pending {
                serial,
                request: job.request,
                tx: Some(job.tx),
                kind: Kind::Plain,
                attempt: 0,
                attempts_max,
                backoff,
                sent_id: 0,
                sent_version: 0,
                expire: None,
                deadline: job.deadline,
                budget: job.budget,
            });
            self.pump(n);
        }
    }

    /// Advances a node's send side as far as readiness and policy allow.
    fn pump(&mut self, n: usize) {
        loop {
            let act = {
                let node = &self.nodes[n];
                if node.park.is_some() {
                    Act::Done
                } else if node.stream.is_some() {
                    match node.conn {
                        ConnState::Ready(_) => Act::Stream,
                        _ => Act::Done, // a stream dies with its connection
                    }
                } else if node.queue.is_empty() {
                    Act::Done
                } else if self.deadline_of(&node.queue[0]).expired() {
                    Act::DropExpiredHead
                } else {
                    match node.conn {
                        ConnState::Idle => Act::Connect,
                        ConnState::Connecting => Act::Done,
                        ConnState::Ready(_) => {
                            let head = &node.queue[0];
                            let chunkable = matches!(
                                head.request,
                                Request::Write { .. } | Request::Read { .. }
                            );
                            if chunkable
                                && node.negotiation.supports_chunking()
                                && node.chunk_override != Some(0)
                                && node.peer_max_chunk.is_none()
                            {
                                if node.probe_inflight {
                                    Act::Done
                                } else {
                                    Act::Probe
                                }
                            } else {
                                let chunk = node.effective_chunk() as usize;
                                match &head.request {
                                    Request::Write { payload, .. }
                                        if chunk > 0 && payload.len() > chunk =>
                                    {
                                        Act::StartStream(chunk)
                                    }
                                    _ => Act::SendHead,
                                }
                            }
                        }
                    }
                }
            };
            match act {
                Act::Done => break,
                Act::Connect => {
                    self.start_connect(n);
                    break;
                }
                Act::Stream => {
                    self.pump_stream(n);
                    break;
                }
                Act::Probe => {
                    let serial = self.next_serial();
                    let backoff = self.policy.backoff(self.nodes[n].seed ^ serial);
                    // The probe runs on behalf of the queue head; it
                    // inherits that request's resilience envelope.
                    let (dl, bg) = {
                        let head = &self.nodes[n].queue[0];
                        (head.deadline, head.budget.clone())
                    };
                    let p = Pending::internal(serial, Request::Ping, Kind::Probe, backoff, dl, bg);
                    self.nodes[n].probe_inflight = true;
                    self.send_frame(n, p);
                    break; // the queue stalls until the probe resolves
                }
                Act::StartStream(chunk) => {
                    self.start_stream(n, chunk);
                    self.pump_stream(n);
                    break;
                }
                Act::SendHead => {
                    let p = self.nodes[n].queue.pop_front().expect("pump saw a head");
                    self.send_frame(n, p);
                }
                Act::DropExpiredHead => {
                    let p = self.nodes[n].queue.pop_front().expect("pump saw a head");
                    settle(&mut self.wheel, p, Err(deadline_error()));
                }
            }
        }
        self.flush_node(n);
    }

    /// Encodes `p`'s request into the node's write buffer, arms its
    /// response timer and moves it to the in-flight queue.
    fn send_frame(&mut self, n: usize, mut p: Pending) {
        let deadline = self.deadline_of(&p);
        let expire_at = self.clock.now_ms() + dur_ms(deadline.clamp_timeout(RESPONSE_TIMEOUT));
        let tid = self.wheel.schedule(expire_at, Timed::Expire { node: n, serial: p.serial });
        let node = &mut self.nodes[n];
        let version = node.negotiation.version();
        let deadline_ms =
            if node.negotiation.supports_deadlines() { deadline.wire_ms() } else { 0 };
        let id = node.next_id;
        node.next_id += 1;
        let mut scratch = std::mem::take(&mut node.scratch);
        p.request.encode_payload_deadline_into(version, deadline_ms, &mut scratch);
        // A Vec<u8> sink is infallible.
        let _ = wire::write_frame_at(&mut node.wbuf, version, p.request.opcode(), id, &scratch);
        node.scratch = scratch;
        p.sent_id = id;
        p.sent_version = version;
        p.expire = Some(tid);
        node.inflight.push_back(p);
    }

    /// Pops the queue head into a chunked write stream, issuing a
    /// `ResumeQuery` first when a prior attempt of the same stamp died
    /// mid-stream.
    fn start_stream(&mut self, n: usize, chunk: usize) {
        let p = self.nodes[n].queue.pop_front().expect("stream starts from a head");
        let Request::Write { file, session, seq, ref payload, .. } = p.request else {
            // Unreachable by construction; settle rather than wedge.
            settle(&mut self.wheel, p, Err(NetError::BadReply("stream over a non-write".into())));
            return;
        };
        let total = payload.len() as u64;
        let n_chunks = payload.len().div_ceil(chunk).max(1) as u64;
        let node = &self.nodes[n];
        let want_resume = session != 0
            && node.negotiation.supports_resume()
            && node.resume_candidate == Some((session, seq));
        let sender =
            if want_resume { None } else { Some(ChunkSender::new(n_chunks, CHUNK_WINDOW as u64)) };
        let (dl, bg) = (p.deadline, p.budget.clone());
        self.nodes[n].stream =
            Some(StreamState { req: p, sender, skip: 0, chunk, total, n_chunks });
        if want_resume {
            let serial = self.next_serial();
            let backoff = self.policy.backoff(self.nodes[n].seed ^ serial);
            let rq = Request::ResumeQuery { file, session, seq };
            self.send_frame(n, Pending::internal(serial, rq, Kind::Resume, backoff, dl, bg));
        }
    }

    /// Feeds the active write stream's send window.
    fn pump_stream(&mut self, n: usize) {
        loop {
            let built = {
                let node = &mut self.nodes[n];
                let Some(st) = node.stream.as_mut() else { return };
                let Some(sender) = st.sender.as_mut() else { return };
                match sender.next_to_send() {
                    None => None,
                    Some(plan) => {
                        let Request::Write { file, compute, l_s, r_s, session, seq, ref payload } =
                            st.req.request
                        else {
                            return;
                        };
                        let off = (plan.index + st.skip) as usize * st.chunk;
                        let end = (off + st.chunk).min(payload.len());
                        let req = Request::WriteChunk {
                            file,
                            compute,
                            l_s,
                            r_s,
                            session,
                            seq,
                            offset: off as u64,
                            total: st.total,
                            last: plan.last,
                            data: payload[off..end].to_vec(),
                        };
                        sender.record_send();
                        Some((req, plan.last, st.req.deadline, st.req.budget.clone()))
                    }
                }
            };
            let Some((req, last, dl, bg)) = built else { break };
            let serial = self.next_serial();
            let backoff = self.policy.backoff(self.nodes[n].seed ^ serial);
            let p = Pending::internal(serial, req, Kind::Chunk { last }, backoff, dl, bg);
            self.send_frame(n, p);
        }
        self.flush_node(n);
    }

    // -- connection lifecycle ------------------------------------------------

    /// Starts a blocking connect on a short-lived helper thread — the
    /// reactor thread itself never blocks on the network (PA046 enforces
    /// that split).
    fn start_connect(&mut self, n: usize) {
        self.nodes[n].conn = ConnState::Connecting;
        let addr = self.nodes[n].addr.clone();
        let shared = Arc::clone(&self.shared);
        let spawned = std::thread::Builder::new()
            .name("pf-mux-connect".into())
            .spawn(move || {
                // pa:allow(PA046)
                let result = NetStream::connect(&addr);
                shared.lock().connected.push((n, result));
                shared.wake();
            })
            .is_ok();
        if !spawned {
            self.nodes[n].conn = ConnState::Idle;
            self.connect_failed(n, "could not spawn a connect helper");
        }
    }

    fn on_connected(&mut self, n: usize, result: std::io::Result<NetStream>) {
        if n >= self.nodes.len() || !matches!(self.nodes[n].conn, ConnState::Connecting) {
            return; // stale result after a reset; the stream drops here
        }
        match result {
            Ok(stream) => {
                if stream.set_nonblocking(true).is_err() {
                    self.nodes[n].conn = ConnState::Idle;
                    self.connect_failed(n, "could not make the connection non-blocking");
                    return;
                }
                if self.reactor.register(stream.as_raw_fd(), n, Interest::READ).is_err() {
                    self.nodes[n].conn = ConnState::Idle;
                    self.connect_failed(n, "could not register the connection");
                    return;
                }
                let node = &mut self.nodes[n];
                node.conn = ConnState::Ready(stream);
                node.fresh = true;
                node.interest = Interest::READ;
                node.rbuf.clear();
                node.rpos = 0;
                node.wbuf.clear();
                node.wstart = 0;
                self.pump(n);
            }
            Err(e) => {
                self.nodes[n].conn = ConnState::Idle;
                self.connect_failed(n, &format!("connect failed: {e}"));
            }
        }
    }

    /// A connect attempt failed: every queued request pays one attempt
    /// (exactly as each would have in its own `NodeClient::call` loop)
    /// and the survivors wait out the head's backoff before the next
    /// dial.
    fn connect_failed(&mut self, n: usize, why: &str) {
        let queued: Vec<Pending> = self.nodes[n].queue.drain(..).collect();
        let mut survivors = Vec::new();
        for p in queued {
            if let Some(p) = self.charge_attempt(n, p, false, why) {
                survivors.push(p);
            }
        }
        self.nodes[n].queue = survivors.into();
        self.park_head(n);
    }

    /// Charges one attempt to `p` after a transport failure; settles it
    /// when attempts or the retry budget run out, returns it otherwise.
    fn charge_attempt(
        &mut self,
        n: usize,
        mut p: Pending,
        was_fresh: bool,
        why: &str,
    ) -> Option<Pending> {
        if let Some(t) = p.expire.take() {
            let _ = self.wheel.cancel(t);
        }
        p.attempt += 1;
        if p.attempt >= p.attempts_max || !self.budget_of(&p).try_spend() {
            settle(
                &mut self.wheel,
                p,
                Err(NetError::Io(std::io::Error::other(format!("node {n}: {why}")))),
            );
            return None;
        }
        if was_fresh {
            p.backoff.reset();
        }
        Some(p)
    }

    /// Tears down `n`'s connection. In-flight plain requests ride the
    /// retry ladder; probe/resume/chunk frames are dropped (the requests
    /// they serve retry as a whole); an active stream records its resume
    /// candidate. Survivors requeue at the front in their original order.
    fn fail_conn(&mut self, n: usize, why: &str) {
        match std::mem::replace(&mut self.nodes[n].conn, ConnState::Idle) {
            ConnState::Ready(stream) => {
                let _ = self.reactor.deregister(stream.as_raw_fd());
            }
            // Connecting: the helper thread's late result is dropped as
            // stale because the state is no longer Connecting.
            ConnState::Connecting | ConnState::Idle => {}
        }
        let (was_fresh, inflight, stream) = {
            let node = &mut self.nodes[n];
            node.rbuf.clear();
            node.rpos = 0;
            node.wbuf.clear();
            node.wstart = 0;
            node.probe_inflight = false;
            node.interest = Interest::READ;
            (node.fresh, node.inflight.drain(..).collect::<Vec<_>>(), node.stream.take())
        };
        let mut survivors = Vec::new();
        for mut p in inflight {
            match p.kind {
                Kind::Plain => {
                    if let Some(p) = self.charge_attempt(n, p, was_fresh, why) {
                        survivors.push(p);
                    }
                }
                Kind::Probe | Kind::Resume | Kind::Chunk { .. } => {
                    if let Some(t) = p.expire.take() {
                        let _ = self.wheel.cancel(t);
                    }
                }
            }
        }
        if let Some(st) = stream {
            if let Request::Write { session, seq, .. } = st.req.request {
                if session != 0 {
                    self.nodes[n].resume_candidate = Some((session, seq));
                }
            }
            if let Some(p) = self.charge_attempt(n, st.req, was_fresh, why) {
                survivors.push(p);
            }
        }
        for p in survivors.into_iter().rev() {
            self.nodes[n].queue.push_front(p);
        }
        self.park_head(n);
    }

    /// Parks the queue behind the head request's next backoff interval
    /// (no-op when already parked or empty) and arms the un-park timer.
    fn park_head(&mut self, n: usize) {
        let (epoch, delay, head_deadline) = {
            let node = &mut self.nodes[n];
            if node.park.is_some() {
                return;
            }
            let Some(head) = node.queue.front_mut() else { return };
            let delay = head.backoff.next_delay();
            let head_deadline = head.deadline;
            let epoch = node.park_seq;
            node.park_seq += 1;
            node.park = Some(epoch);
            (epoch, delay, head_deadline)
        };
        let deadline = head_deadline.unwrap_or(self.deadline);
        let at = self.clock.now_ms() + dur_ms(deadline.clamp_timeout(delay));
        self.wheel.schedule(at, Timed::Resend { node: n, epoch });
    }

    /// Parks `p` at the queue front for `wait` (a shed's hinted delay).
    fn park_with(&mut self, n: usize, p: Pending, wait: Duration) {
        let epoch = {
            let node = &mut self.nodes[n];
            node.queue.push_front(p);
            let epoch = node.park_seq;
            node.park_seq += 1;
            node.park = Some(epoch);
            epoch
        };
        let at = self.clock.now_ms() + dur_ms(wait);
        self.wheel.schedule(at, Timed::Resend { node: n, epoch });
    }

    fn fail_all(&mut self, why: &str) {
        for n in 0..self.nodes.len() {
            let node = &mut self.nodes[n];
            let mut owed: Vec<Pending> = node.inflight.drain(..).collect();
            owed.extend(node.queue.drain(..));
            if let Some(st) = node.stream.take() {
                owed.push(st.req);
            }
            for p in owed {
                settle(
                    &mut self.wheel,
                    p,
                    Err(NetError::Io(std::io::Error::other(format!("node {n}: {why}")))),
                );
            }
        }
    }

    // -- socket readiness ----------------------------------------------------

    fn flush_node(&mut self, n: usize) {
        let outcome = {
            let node = &mut self.nodes[n];
            let ConnState::Ready(stream) = &node.conn else { return };
            let mut sref = stream;
            let mut result: Result<(), String> = Ok(());
            while node.wstart < node.wbuf.len() {
                match sref.write(&node.wbuf[node.wstart..]) {
                    Ok(0) => {
                        result = Err("connection closed while writing".to_string());
                        break;
                    }
                    Ok(k) => node.wstart += k,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => {
                        result = Err(format!("write failed: {e}"));
                        break;
                    }
                }
            }
            if node.wstart >= node.wbuf.len() {
                node.wbuf.clear();
                node.wstart = 0;
            }
            result
        };
        if let Err(why) = outcome {
            self.fail_conn(n, &why);
            return;
        }
        // Keep write interest only while bytes are pending.
        let want =
            if self.nodes[n].pending_bytes() > 0 { Interest::READ_WRITE } else { Interest::READ };
        let node = &mut self.nodes[n];
        if node.interest != want {
            if let ConnState::Ready(stream) = &node.conn {
                let fd = stream.as_raw_fd();
                node.interest = want;
                let _ = self.reactor.reregister(fd, n, want);
            }
        }
    }

    fn on_readable(&mut self, n: usize) {
        loop {
            let read = {
                let node = &mut self.nodes[n];
                let ConnState::Ready(stream) = &node.conn else { return };
                let mut sref = stream;
                let len = node.rbuf.len();
                node.rbuf.resize(len + READ_CHUNK, 0);
                let r = sref.read(&mut node.rbuf[len..]);
                let got = match &r {
                    Ok(k) => *k,
                    Err(_) => 0,
                };
                node.rbuf.truncate(len + got);
                r
            };
            match read {
                Ok(0) => {
                    // With nothing owed this is the daemon's idle timeout
                    // reaping a warm connection — fail_conn settles
                    // nothing and the node just goes Idle.
                    self.fail_conn(n, "daemon closed the connection before replying");
                    return;
                }
                Ok(_) => {
                    if !self.drain_frames(n) {
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    self.fail_conn(n, &format!("read failed: {e}"));
                    return;
                }
            }
        }
        // Opportunistically compact the consumed prefix.
        let node = &mut self.nodes[n];
        if node.rpos == node.rbuf.len() {
            node.rbuf.clear();
            node.rpos = 0;
        } else if node.rpos > READ_CHUNK {
            node.rbuf.drain(..node.rpos);
            node.rpos = 0;
        }
    }

    /// Parses every complete frame in the read buffer. Returns `false`
    /// when the connection died while handling a reply.
    fn drain_frames(&mut self, n: usize) -> bool {
        loop {
            if !matches!(self.nodes[n].conn, ConnState::Ready(_)) {
                return false;
            }
            let parsed = {
                let node = &self.nodes[n];
                let buf = &node.rbuf[node.rpos..];
                if buf.len() < 4 {
                    None
                } else {
                    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
                    if len > node.max_frame {
                        Some(Err(format!("reply frame of {len} bytes")))
                    } else if len < HEADER_LEN {
                        Some(Err(format!("reply frame length {len}")))
                    } else if buf.len() < 4 + len as usize {
                        None
                    } else {
                        let version = buf[4];
                        let opcode = buf[5];
                        let id = u64::from_le_bytes(buf[6..14].try_into().expect("8 bytes"));
                        let payload = &buf[14..4 + len as usize];
                        let decoded = if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION)
                            .contains(&version)
                        {
                            Err(format!("reply version {version}"))
                        } else {
                            Reply::decode_at(version, opcode, payload).map_err(|e| e.to_string())
                        };
                        Some(Ok((id, decoded, 4 + len as usize)))
                    }
                }
            };
            match parsed {
                None => return true,
                Some(Err(why)) => {
                    // Framing is broken: the waiting request gets the
                    // specific error; the connection is beyond resync.
                    if let Some(p) = self.nodes[n].inflight.pop_front() {
                        self.finish_bad(n, p, why);
                    }
                    self.fail_conn(n, "malformed reply frame");
                    return false;
                }
                Some(Ok((id, decoded, consumed))) => {
                    self.nodes[n].rpos += consumed;
                    self.on_reply(n, id, decoded);
                }
            }
        }
    }

    // -- reply handling ------------------------------------------------------

    fn on_reply(&mut self, n: usize, id: u64, decoded: Result<Reply, String>) {
        let Some(mut p) = self.nodes[n].inflight.pop_front() else {
            self.fail_conn(n, "unsolicited reply frame");
            return;
        };
        if let Some(t) = p.expire.take() {
            let _ = self.wheel.cancel(t);
        }
        if id != p.sent_id {
            // Reply/request streams desynchronized — the old IdMismatch:
            // drop the connection and retry everything it owed.
            self.nodes[n].inflight.push_front(p);
            self.fail_conn(n, &format!("reply id {id} did not match the request"));
            return;
        }
        let reply = match decoded {
            Ok(r) => r,
            Err(why) => {
                self.finish_bad(n, p, why);
                return;
            }
        };
        // Any decoded reply proves the connection works.
        self.nodes[n].fresh = false;
        if let Reply::Pong { max_chunk, .. } = &reply {
            self.nodes[n].peer_max_chunk = Some(*max_chunk);
        }
        match p.kind {
            Kind::Plain => self.finish_plain(n, p, reply),
            Kind::Probe => self.finish_probe(n, p.sent_version, reply),
            Kind::Resume => self.finish_resume(n, reply),
            Kind::Chunk { last } => self.finish_chunk(n, last, p.sent_version, reply),
        }
    }

    /// A reply that could not be decoded: terminal `BadReply` for the
    /// request it answers (never retried), scoped by what that frame was.
    fn finish_bad(&mut self, n: usize, p: Pending, why: String) {
        match p.kind {
            Kind::Plain => {
                settle(&mut self.wheel, p, Err(NetError::BadReply(why)));
            }
            Kind::Probe => {
                self.nodes[n].probe_inflight = false;
                if let Some(head) = self.nodes[n].queue.pop_front() {
                    settle(&mut self.wheel, head, Err(NetError::BadReply(why)));
                }
                self.pump(n);
            }
            Kind::Resume | Kind::Chunk { .. } => {
                self.abort_stream(n, NetError::BadReply(why));
            }
        }
    }

    fn finish_plain(&mut self, n: usize, p: Pending, reply: Reply) {
        match reply {
            Reply::Error(e)
                if e.code == ErrCode::UnsupportedVersion
                    && self.nodes[n].negotiation.can_downgrade() =>
            {
                self.downgrade_and_requeue(n, p);
            }
            Reply::Error(e) => {
                settle(&mut self.wheel, p, Err(NetError::Protocol(e)));
            }
            Reply::Busy { retry_after_ms } => self.retry_shed(n, p, retry_after_ms, false),
            Reply::Overloaded { retry_after_ms } => self.retry_shed(n, p, retry_after_ms, true),
            other => {
                self.budget_of(&p).record_success();
                settle(&mut self.wheel, p, Ok(other));
            }
        }
    }

    /// Steps the negotiated version down (guarded so a burst of pipelined
    /// `UnsupportedVersion` replies downgrades once, not once per reply)
    /// and re-issues the request without consuming an attempt.
    fn downgrade_and_requeue(&mut self, n: usize, p: Pending) {
        let node = &mut self.nodes[n];
        if p.sent_version == node.negotiation.version() {
            let _ = node.negotiation.downgrade();
        }
        node.queue.push_front(p);
        self.pump(n);
    }

    /// A `Busy`/`Overloaded` shed: retry after the hinted delay if the
    /// ladder allows, surface [`NetError::Busy`] otherwise. `Overloaded`
    /// also drops the connection (the daemon is about to).
    fn retry_shed(&mut self, n: usize, mut p: Pending, hint_ms: u32, reconnect: bool) {
        p.attempt += 1;
        if p.attempt >= p.attempts_max || !self.budget_of(&p).try_spend() {
            settle(&mut self.wheel, p, Err(NetError::Busy { retry_after_ms: hint_ms }));
        } else {
            let wait =
                self.deadline_of(&p).clamp_timeout(Duration::from_millis(u64::from(hint_ms)));
            self.park_with(n, p, wait);
        }
        if reconnect {
            self.fail_conn(n, "daemon shed the whole connection");
        }
    }

    fn finish_probe(&mut self, n: usize, sent_version: u8, reply: Reply) {
        self.nodes[n].probe_inflight = false;
        match reply {
            Reply::Pong { .. } => self.pump(n), // capability recorded in on_reply
            Reply::Error(e)
                if e.code == ErrCode::UnsupportedVersion
                    && self.nodes[n].negotiation.can_downgrade() =>
            {
                let node = &mut self.nodes[n];
                if sent_version == node.negotiation.version() {
                    let _ = node.negotiation.downgrade();
                }
                self.pump(n); // re-probe or proceed unchunked at the lower version
            }
            Reply::Error(e) => {
                if let Some(head) = self.nodes[n].queue.pop_front() {
                    settle(&mut self.wheel, head, Err(NetError::Protocol(e)));
                }
                self.pump(n);
            }
            Reply::Busy { retry_after_ms } => {
                if let Some(head) = self.nodes[n].queue.pop_front() {
                    self.retry_shed(n, head, retry_after_ms, false);
                }
            }
            Reply::Overloaded { retry_after_ms } => {
                if let Some(head) = self.nodes[n].queue.pop_front() {
                    self.retry_shed(n, head, retry_after_ms, true);
                }
            }
            other => {
                if let Some(head) = self.nodes[n].queue.pop_front() {
                    settle(
                        &mut self.wheel,
                        head,
                        Err(NetError::BadReply(format!("expected Pong, got {other:?}"))),
                    );
                }
                self.pump(n);
            }
        }
    }

    fn finish_resume(&mut self, n: usize, reply: Reply) {
        let node = &mut self.nodes[n];
        let Some(st) = node.stream.as_mut() else { return };
        // Only a clean, aligned, partial answer fast-forwards; anything
        // else restarts the stream at offset 0 — always safe.
        st.skip = match reply {
            Reply::ResumeAt { offset }
                if offset > 0 && offset < st.total && offset % st.chunk as u64 == 0 =>
            {
                offset / st.chunk as u64
            }
            _ => 0,
        };
        st.sender = Some(ChunkSender::new(st.n_chunks - st.skip, CHUNK_WINDOW as u64));
        self.pump_stream(n);
    }

    fn finish_chunk(&mut self, n: usize, last: bool, sent_version: u8, reply: Reply) {
        match reply {
            Reply::ChunkOk { .. } if !last => {
                let ack = self.nodes[n]
                    .stream
                    .as_mut()
                    .and_then(|st| st.sender.as_mut())
                    .map(ChunkSender::record_ack);
                match ack {
                    Some(Err(v)) => self.abort_stream(n, NetError::BadReply(v.to_string())),
                    _ => self.pump_stream(n),
                }
            }
            Reply::WriteOk { .. } if last => {
                let Some(st) = self.nodes[n].stream.take() else { return };
                if let Request::Write { session, seq, .. } = st.req.request {
                    if self.nodes[n].resume_candidate == Some((session, seq)) {
                        self.nodes[n].resume_candidate = None;
                    }
                }
                self.budget_of(&st.req).record_success();
                settle(&mut self.wheel, st.req, Ok(reply));
                self.pump(n);
            }
            Reply::Error(e)
                if e.code == ErrCode::UnsupportedVersion
                    && self.nodes[n].negotiation.can_downgrade() =>
            {
                // The daemon terminated the stream; downgrade and
                // re-issue the whole write over a resynced connection.
                let Some(st) = self.nodes[n].stream.take() else { return };
                self.note_stream_resume(n, &st.req.request);
                let node = &mut self.nodes[n];
                if sent_version == node.negotiation.version() {
                    let _ = node.negotiation.downgrade();
                }
                node.queue.push_front(st.req);
                self.fail_conn(n, "chunk stream rejected for version");
            }
            Reply::Error(e) => {
                let Some(st) = self.nodes[n].stream.take() else { return };
                self.note_stream_resume(n, &st.req.request);
                settle(&mut self.wheel, st.req, Err(NetError::Protocol(e)));
                self.fail_conn(n, "chunk stream answered with an error");
            }
            Reply::Busy { retry_after_ms } | Reply::Overloaded { retry_after_ms } => {
                let Some(st) = self.nodes[n].stream.take() else { return };
                self.note_stream_resume(n, &st.req.request);
                self.retry_shed(n, st.req, retry_after_ms, true);
            }
            other => {
                self.abort_stream(
                    n,
                    NetError::BadReply(format!("chunk stream acknowledged with {other:?}")),
                );
            }
        }
    }

    /// Remembers an interrupted stamped stream for `ResumeQuery` on retry.
    fn note_stream_resume(&mut self, n: usize, request: &Request) {
        if let Request::Write { session, seq, .. } = request {
            if *session != 0 {
                self.nodes[n].resume_candidate = Some((*session, *seq));
            }
        }
    }

    /// Terminates the active stream with a terminal error and drops the
    /// (now desynchronized) connection.
    fn abort_stream(&mut self, n: usize, err: NetError) {
        if let Some(st) = self.nodes[n].stream.take() {
            self.note_stream_resume(n, &st.req.request);
            settle(&mut self.wheel, st.req, Err(err));
        }
        self.fail_conn(n, "chunk stream aborted");
    }

    // -- timers --------------------------------------------------------------

    fn fire_timers(&mut self) {
        let now = self.clock.now_ms();
        for (_, timed) in self.wheel.advance(now) {
            match timed {
                Timed::Resend { node, epoch } => {
                    if node < self.nodes.len() && self.nodes[node].park == Some(epoch) {
                        self.nodes[node].park = None;
                        self.pump(node);
                    }
                }
                Timed::Expire { node, serial } => {
                    if node < self.nodes.len()
                        && self.nodes[node].inflight.iter().any(|p| p.serial == serial)
                    {
                        self.fail_conn(node, "timed out waiting for the daemon's reply");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::NodeClient;
    use crate::resilience::RetryBudget;
    use crate::session::{spawn_loopback, Session};
    use arraydist::matrix::MatrixLayout;
    use clusterfile::StorageBackend;

    /// Spawns one daemon and registers an identity view (1 node, 16×16 =
    /// 256 bytes, physical = logical) so raw `Write { l_s, r_s }`
    /// requests address subfile bytes directly.
    fn identity_daemon() -> (Vec<crate::server::DaemonHandle>, Vec<String>, Session) {
        let physical = MatrixLayout::ColumnBlocks.partition(16, 16, 1, 1);
        let logical = MatrixLayout::ColumnBlocks.partition(16, 16, 1, 1);
        let (handles, addrs) =
            spawn_loopback(1, StorageBackend::Memory).expect("spawn loopback daemon");
        let mut session = Session::connect(&addrs);
        session.create_file(1, physical, 256).expect("create file");
        session.set_view(0, 1, &logical, 0).expect("set view");
        (handles, addrs, session)
    }

    fn write_req(i: u64) -> Request {
        Request::Write {
            file: 1,
            compute: 0,
            l_s: i * 2,
            r_s: i * 2 + 1,
            session: 0,
            seq: 0,
            payload: vec![i as u8, (i as u8) ^ 0xAB],
        }
    }

    fn fetch_bytes(reply: Reply) -> Vec<u8> {
        match reply {
            Reply::Data { payload } => payload,
            other => panic!("expected Data, got {other:?}"),
        }
    }

    #[test]
    fn ninety_six_in_flight_requests_match_the_serial_path_byte_for_byte() {
        // Multiplexed half: submit 96 writes over ONE warm connection
        // before collecting a single reply, so the whole burst is in
        // flight (or queued behind the connection) at once.
        let (mut handles_m, addrs_m, session_m) = identity_daemon();
        let mux = Mux::new(&addrs_m, Arc::new(RetryBudget::for_session()));
        let slots: Vec<ReplySlot> =
            (0..96).map(|i| mux.submit(0, write_req(i)).expect("submit")).collect();
        for (i, slot) in slots.into_iter().enumerate() {
            match slot.recv().expect("driver alive").expect("write reply") {
                Reply::WriteOk { written: 2, .. } => {}
                other => panic!("write {i}: unexpected reply {other:?}"),
            }
        }
        let fetched = fetch_bytes(
            mux.submit(0, Request::Fetch { file: 1 })
                .expect("submit fetch")
                .recv()
                .expect("driver alive")
                .expect("fetch reply"),
        );

        // Serial half: the same 96 writes through the classic one-at-a-
        // time client against a twin daemon.
        let (mut handles_s, addrs_s, session_s) = identity_daemon();
        let mut client = NodeClient::new(addrs_s[0].clone());
        for i in 0..96 {
            match client.call(&write_req(i)).expect("serial write") {
                Reply::WriteOk { written: 2, .. } => {}
                other => panic!("serial write {i}: unexpected reply {other:?}"),
            }
        }
        let serial = fetch_bytes(client.call(&Request::Fetch { file: 1 }).expect("serial fetch"));

        assert_eq!(fetched, serial, "multiplexed bytes must match the serial path");
        // And both match the analytically expected image.
        let mut expected = vec![0u8; 256];
        for i in 0..96u64 {
            expected[(i * 2) as usize] = i as u8;
            expected[(i * 2 + 1) as usize] = (i as u8) ^ 0xAB;
        }
        assert_eq!(fetched, expected);

        drop((session_m, session_s, mux, client));
        for h in handles_m.iter_mut().chain(handles_s.iter_mut()) {
            h.stop();
        }
    }

    #[test]
    fn submit_after_drop_of_driver_reports_a_lost_transport() {
        let mux = Mux::new(&["127.0.0.1:1".to_string()], Arc::new(RetryBudget::for_session()));
        assert!(mux.submit(7, Request::Ping).is_err(), "out-of-range node is a usage error");
    }
}
