//! The reactor-mode daemon: one non-blocking event-loop thread serving
//! every connection, plus a fixed pool of frame-executing workers
//! (DESIGN.md §17, enabled by [`DaemonConfig::workers`] > 0).
//!
//! Division of labor:
//!
//! * the **reactor thread** owns the listener and every socket. It
//!   accepts, reads, splits the byte stream into frames, stamps each
//!   frame's `received` instant (the deadline clock starts at receipt,
//!   exactly like the thread-per-connection daemon), and drains queued
//!   reply bytes back out. It never executes a request, never sleeps,
//!   and never blocks on anything but [`Reactor::poll`] — idle timeouts
//!   ride the [`TimerWheel`] instead of per-socket `SO_RCVTIMEO`.
//! * a **worker** executes decoded frames through the *same*
//!   [`handle_frame`](super::handle_frame) the classic daemon uses — one
//!   connection's frames strictly in FIFO order (an `executing` flag pins
//!   a connection to at most one worker at a time), which preserves reply
//!   ordering and the one-chunked-write-per-connection stream state. The
//!   fault injector's frame hook also runs here, so an injected delay
//!   stalls only the faulted connection's worker slot, never the event
//!   loop.
//!
//! Backpressure is bounded at both edges: a connection with
//! [`FRAME_QUEUE_DEPTH`] undispatched frames has its read interest
//! dropped (TCP pushes back to the client) until the worker drains it,
//! and a worker whose replies outrun a slow reader parks on the
//! connection's write-buffer condvar until the reactor flushes it.
//!
//! Every per-frame semantic the model checker and chaos suite pin down —
//! admission order, `Busy`/`Overloaded` shedding, journal-before-ack,
//! exactly-once stamps, reply truncation and kill faults — is untouched:
//! those all live in [`handle_frame`](super::handle_frame) and the frame
//! prologue replicated verbatim in [`execute_frame`].

use super::{lock, Handled, NetListener, NetStream, Shared, BUSY_RETRY_MS, OVERLOADED_RETRY_MS};
use crate::error::{ErrCode, ProtocolError};
use crate::fault::FrameFault;
use crate::reactor::{Clock, Event, Interest, MonotonicClock, Reactor, TimerId, TimerWheel};
use crate::wire::{self, Reply, HEADER_LEN, PROTOCOL_VERSION};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Reactor token of the listening socket; connections start above it.
const LISTENER_TOKEN: usize = 0;

/// Undispatched frames buffered per connection before its read interest
/// is dropped (flow control propagates to the client through TCP).
const FRAME_QUEUE_DEPTH: usize = 32;

/// Queue length at which a paused connection's reads resume.
const FRAME_QUEUE_RESUME: usize = FRAME_QUEUE_DEPTH / 2;

/// Pending reply bytes per connection before the producing worker parks
/// until the reactor drains the socket (slow-reader backpressure).
const WRITE_BUF_CAP: usize = 1 << 20;

/// Frames one worker executes for a connection before requeuing it, so a
/// blast from one client cannot monopolize a worker.
const WORKER_BURST: usize = 16;

/// How long a shed (over-capacity) connection may sit before it is
/// reaped without delivering its `Overloaded` verdict.
const SHED_TIMEOUT: Duration = Duration::from_secs(2);

/// Bytes per non-blocking read call.
const READ_CHUNK: usize = 64 * 1024;

/// One frame decoded off a connection, queued for a worker.
struct QueuedFrame {
    version: u8,
    opcode: u8,
    request_id: u64,
    payload: Vec<u8>,
    /// Receipt instant — the deadline clock starts here, *before* any
    /// queueing or injected delay, so a slow daemon burns the budget.
    received: Instant,
    /// 1-based frame ordinal on this connection (the fault injector's
    /// per-connection frame counter).
    seqno: u64,
}

/// Worker-visible connection state behind one mutex.
struct ConnQ {
    frames: VecDeque<QueuedFrame>,
    /// A worker currently owns this connection's frames: at most one at a
    /// time, so frames execute (and reply) strictly in arrival order.
    executing: bool,
    /// Cleared on close: workers drop frames of a dead connection.
    open: bool,
    /// The reactor stopped reading because the queue hit its depth cap.
    paused: bool,
    /// Accepted over `max_connections`: first frame is answered
    /// `Overloaded` (protocol ≥ 5) and the connection closed.
    shed: bool,
    /// In-progress chunked write (the per-connection stream state the
    /// classic daemon keeps on its thread's stack).
    chunk: Option<super::ChunkWrite>,
    /// A framing-level protocol error (oversized/undersized frame): the
    /// worker answers it after draining queued frames, then closes.
    fatal: Option<ProtocolError>,
}

/// Reply bytes queued toward one connection.
#[derive(Default)]
struct WriteBuf {
    buf: Vec<u8>,
    /// Bytes of `buf` already written to the socket.
    start: usize,
    /// Socket is gone; producers drop their output.
    closed: bool,
    /// Close the connection once the buffer drains (shutdown-with-reply,
    /// shed verdicts, truncated-frame severing).
    close_after_flush: bool,
}

/// One connection, shared between the reactor thread and the worker pool.
struct Conn {
    token: usize,
    stream: Arc<NetStream>,
    q: Mutex<ConnQ>,
    wq: Mutex<WriteBuf>,
    /// Signalled by the reactor after draining `wq` (backpressure release).
    wq_cv: Condvar,
    /// Tenant id learned from the connection's last protocol ≥ 6 `Open`
    /// frame (0 until one arrives): the DRR dispatch key and the
    /// per-tenant quota key.
    tenant: AtomicU32,
}

/// Worker → reactor notifications, carried over the reactor's waker.
struct Notify {
    waker: crate::reactor::Waker,
    /// Connections whose frame queue drained below the resume mark: the
    /// reactor re-parses buffered bytes and re-arms read interest.
    rearm: Mutex<Vec<usize>>,
    /// Connections with freshly queued reply bytes to drain.
    flush: Mutex<Vec<usize>>,
}

impl Notify {
    fn push_rearm(&self, token: usize) {
        lock(&self.rearm).push(token);
        self.waker.wake();
    }

    fn push_flush(&self, token: usize) {
        lock(&self.flush).push(token);
        self.waker.wake();
    }
}

/// One tenant's backlog inside the deficit-round-robin scheduler.
struct TenantQ<T> {
    /// Queued jobs with their service cost (frames ready at enqueue time).
    q: VecDeque<(T, u64)>,
    /// Unspent service credit from previous rounds.
    deficit: u64,
    /// The tenant currently occupies one slot of the round-robin ring.
    in_ring: bool,
}

/// Deficit round robin over tenant-keyed job queues (DESIGN.md §18).
///
/// Each tenant with backlog holds one slot in a round-robin ring. A `pop`
/// serves the ring head if its accumulated deficit covers the head job's
/// cost; otherwise the head earns one `quantum` of credit and rotates to
/// the tail. Costs are clamped to the quantum, so one recharge always
/// suffices and a visit never loops. Tenants leave the ring (and forfeit
/// unspent deficit) the moment their backlog drains — idle flows earn no
/// credit, the classic DRR anti-burst rule.
struct Drr<T> {
    tenants: HashMap<u32, TenantQ<T>>,
    ring: VecDeque<u32>,
    quantum: u64,
}

impl<T> Drr<T> {
    fn new(quantum: u64) -> Self {
        Self { tenants: HashMap::new(), ring: VecDeque::new(), quantum: quantum.max(1) }
    }

    fn push(&mut self, tenant: u32, item: T, cost: u64) {
        let quantum = self.quantum;
        let tq = self.tenants.entry(tenant).or_insert_with(|| TenantQ {
            q: VecDeque::new(),
            deficit: 0,
            in_ring: false,
        });
        tq.q.push_back((item, cost.clamp(1, quantum)));
        if !tq.in_ring {
            tq.in_ring = true;
            self.ring.push_back(tenant);
        }
    }

    fn pop(&mut self) -> Option<T> {
        loop {
            let &tenant = self.ring.front()?;
            let tq = self.tenants.get_mut(&tenant).expect("ring tenant has a queue");
            let Some(&(_, cost)) = tq.q.front() else {
                self.ring.pop_front();
                self.tenants.remove(&tenant);
                continue;
            };
            if tq.deficit >= cost {
                tq.deficit -= cost;
                let (item, _) = tq.q.pop_front().expect("front checked above");
                if tq.q.is_empty() {
                    self.ring.pop_front();
                    self.tenants.remove(&tenant);
                }
                return Some(item);
            }
            tq.deficit += self.quantum;
            self.ring.rotate_left(1);
        }
    }
}

struct JobQ {
    /// Fair mode: per-tenant deficit-round-robin dispatch.
    drr: Option<Drr<Arc<Conn>>>,
    /// Unfair mode: one FIFO across every connection (an aggressive
    /// tenant's connection count buys it proportional service).
    fifo: VecDeque<Arc<Conn>>,
    stopping: bool,
}

/// The worker pool's job queue: connections with undispatched frames.
struct Pool {
    jobs: Mutex<JobQ>,
    cv: Condvar,
}

impl Pool {
    fn new(fair: bool) -> Self {
        Self {
            jobs: Mutex::new(JobQ {
                drr: fair.then(|| Drr::new(WORKER_BURST as u64)),
                fifo: VecDeque::new(),
                stopping: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueues a connection with frames ready; `cost` is the frame count
    /// queued at enqueue time (the DRR service charge — a connection
    /// carrying a fat burst spends its tenant's credit faster).
    fn push(&self, conn: Arc<Conn>, cost: u64) {
        let mut jobs = lock(&self.jobs);
        match &mut jobs.drr {
            Some(drr) => drr.push(conn.tenant.load(Ordering::Relaxed), conn, cost),
            None => jobs.fifo.push_back(conn),
        }
        drop(jobs);
        self.cv.notify_one();
    }

    fn next_job(&self) -> Option<Arc<Conn>> {
        let mut jobs = lock(&self.jobs);
        loop {
            let popped = match &mut jobs.drr {
                Some(drr) => drr.pop(),
                None => jobs.fifo.pop_front(),
            };
            if let Some(c) = popped {
                return Some(c);
            }
            if jobs.stopping {
                return None;
            }
            jobs = self.cv.wait(jobs).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn stop(&self) {
        lock(&self.jobs).stopping = true;
        self.cv.notify_all();
    }
}

/// Reactor-private per-connection state (read buffer, timers, interest).
struct ConnEntry {
    conn: Arc<Conn>,
    /// Raw inbound bytes; frames are parsed out from `rpos`.
    rbuf: Vec<u8>,
    rpos: usize,
    frames_seen: u64,
    idle_timer: Option<TimerId>,
    /// Idle budget (read timeout; [`SHED_TIMEOUT`] for shed connections).
    timeout: Option<Duration>,
    interest: Interest,
    /// Reads stopped for good (framing error answered, output draining).
    draining: bool,
}

/// Entry point: spawned as the `pf-net-reactor` thread by [`super::serve`].
pub(super) fn run(listener: NetListener, reactor: Reactor, shared: &Arc<Shared>, workers: usize) {
    let cleanup = match &listener {
        NetListener::Unix(_, path) => Some(path.clone()),
        NetListener::Tcp(_) => None,
    };
    let notify = Arc::new(Notify {
        waker: reactor.waker(),
        rearm: Mutex::new(Vec::new()),
        flush: Mutex::new(Vec::new()),
    });
    let pool = Arc::new(Pool::new(shared.config.fair));
    let mut worker_handles = Vec::new();
    for i in 0..workers.max(1) {
        let shared = Arc::clone(shared);
        let pool = Arc::clone(&pool);
        let notify = Arc::clone(&notify);
        if let Ok(h) = std::thread::Builder::new()
            .name(format!("pf-net-worker-{i}"))
            .spawn(move || worker_loop(&shared, &pool, &notify))
        {
            worker_handles.push(h);
        }
    }
    let mut driver = Driver {
        shared: Arc::clone(shared),
        reactor,
        listener,
        pool: Arc::clone(&pool),
        notify,
        conns: HashMap::new(),
        wheel: TimerWheel::new(),
        clock: MonotonicClock::new(),
        next_token: LISTENER_TOKEN + 1,
    };
    let listener_fd = driver.listener.as_raw_fd();
    if driver.reactor.register(listener_fd, LISTENER_TOKEN, Interest::READ).is_ok() {
        driver.run_loop();
    }
    // Teardown — ordered so every connection driver is gone before the
    // listener (owned by this thread) drops:
    // 1. no new jobs; 2. sever connections, unblocking any worker parked
    // on a write buffer; 3. join the workers; 4. only then return, which
    // drops the listener (and removes a Unix socket path).
    pool.stop();
    let tokens: Vec<usize> = driver.conns.keys().copied().collect();
    for token in tokens {
        driver.close_conn(token);
    }
    for h in worker_handles {
        let _ = h.join();
    }
    if let Some(path) = cleanup {
        let _ = std::fs::remove_file(path);
    }
}

struct Driver {
    shared: Arc<Shared>,
    reactor: Reactor,
    listener: NetListener,
    pool: Arc<Pool>,
    notify: Arc<Notify>,
    conns: HashMap<usize, ConnEntry>,
    wheel: TimerWheel<usize>,
    clock: MonotonicClock,
    next_token: usize,
}

impl Driver {
    fn run_loop(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        while !self.shared.stopping.load(Ordering::SeqCst) {
            let timeout = self.wheel.until_next(self.clock.now_ms()).map(Duration::from_millis);
            if self.reactor.poll(&mut events, timeout).is_err() {
                return;
            }
            if self.shared.stopping.load(Ordering::SeqCst) {
                return;
            }
            for &ev in &events {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready();
                } else if self.conns.contains_key(&ev.token) {
                    if ev.readable && self.conn_readable(ev.token) {
                        continue; // connection closed
                    }
                    if ev.writable {
                        self.conn_writable(ev.token);
                    }
                }
            }
            self.apply_notifications();
            self.fire_timers();
        }
    }

    /// Drains the accept backlog (level-triggered: loop to `WouldBlock`).
    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok(s) => s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if self.shared.stopping.load(Ordering::SeqCst) {
                return;
            }
            if stream.set_nonblocking(true).is_err() {
                stream.shutdown_both();
                continue;
            }
            let stream = Arc::new(stream);
            // Same accept-edge policy as the classic daemon: register the
            // connection for shutdown severing, shed it when over cap.
            let shed = {
                let mut conns = lock(&self.shared.conns);
                conns.retain(|w| w.strong_count() > 0);
                let cap = self.shared.config.max_connections;
                if cap > 0 && conns.len() >= cap {
                    true
                } else {
                    conns.push(Arc::downgrade(&stream));
                    false
                }
            };
            let token = self.next_token;
            self.next_token += 1;
            if self.reactor.register(stream.as_raw_fd(), token, Interest::READ).is_err() {
                stream.shutdown_both();
                continue;
            }
            let conn = Arc::new(Conn {
                token,
                stream,
                q: Mutex::new(ConnQ {
                    frames: VecDeque::new(),
                    executing: false,
                    open: true,
                    paused: false,
                    shed,
                    chunk: None,
                    fatal: None,
                }),
                wq: Mutex::new(WriteBuf::default()),
                wq_cv: Condvar::new(),
                tenant: AtomicU32::new(0),
            });
            let timeout = if shed { Some(SHED_TIMEOUT) } else { self.shared.config.read_timeout };
            let idle_timer = timeout
                .map(|t| self.wheel.schedule(self.clock.now_ms().saturating_add(dur_ms(t)), token));
            self.conns.insert(
                token,
                ConnEntry {
                    conn,
                    rbuf: Vec::new(),
                    rpos: 0,
                    frames_seen: 0,
                    idle_timer,
                    timeout,
                    interest: Interest::READ,
                    draining: false,
                },
            );
        }
    }

    /// Reads and parses as much as the socket and the frame-queue budget
    /// allow. Returns true when the connection was closed.
    fn conn_readable(&mut self, token: usize) -> bool {
        loop {
            let mut eof = false;
            let mut n_read = 0usize;
            {
                let Some(entry) = self.conns.get_mut(&token) else { return true };
                let mut tmp = [0u8; READ_CHUNK];
                let mut stream: &NetStream = &entry.conn.stream;
                loop {
                    match stream.read(&mut tmp) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(n) => {
                            if !entry.draining {
                                entry.rbuf.extend_from_slice(&tmp[..n]);
                            }
                            n_read = n;
                            break;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            eof = true;
                            break;
                        }
                    }
                }
            }
            if n_read > 0 {
                self.reset_idle_timer(token);
                self.parse_frames(token);
            }
            if eof {
                self.close_conn(token);
                return true;
            }
            let stop = {
                let Some(entry) = self.conns.get(&token) else { return true };
                n_read == 0 || entry.draining || lock(&entry.conn.q).paused
            };
            if stop {
                break;
            }
        }
        self.update_interest(token);
        false
    }

    /// Splits buffered bytes into frames and hands them to the pool.
    fn parse_frames(&mut self, token: usize) {
        let max_frame = self.shared.config.max_frame;
        let pool = Arc::clone(&self.pool);
        let Some(entry) = self.conns.get_mut(&token) else { return };
        // The pool push is deferred to the end of the parse batch so the
        // DRR charge covers every frame parsed from this readiness event,
        // not just the first — pushing at cost 1 and then appending the
        // rest of a burst behind the queued connection would let a fat
        // batch ride a singleton's charge.
        let mut enqueue = false;
        loop {
            let avail = entry.rbuf.len() - entry.rpos;
            if avail < 4 {
                break;
            }
            let len = u32::from_le_bytes(
                entry.rbuf[entry.rpos..entry.rpos + 4].try_into().expect("4-byte slice"),
            );
            if len > max_frame {
                // The frame was not consumed, so the stream is out of
                // sync: the worker answers with request id 0 and closes —
                // same verdict as the classic daemon's.
                fatal_framing(
                    entry,
                    &pool,
                    ProtocolError::new(
                        ErrCode::FrameTooLarge,
                        format!("frame of {len} bytes exceeds the {max_frame} byte budget"),
                    ),
                );
                break;
            }
            if len < HEADER_LEN {
                fatal_framing(
                    entry,
                    &pool,
                    ProtocolError::new(
                        ErrCode::Malformed,
                        format!("frame length {len} is shorter than the header"),
                    ),
                );
                break;
            }
            let need = 4 + len as usize;
            if avail < need {
                break;
            }
            let f = &entry.rbuf[entry.rpos + 4..entry.rpos + need];
            let frame = QueuedFrame {
                version: f[0],
                opcode: f[1],
                request_id: u64::from_le_bytes(f[2..10].try_into().expect("8-byte slice")),
                payload: f[10..].to_vec(),
                received: Instant::now(),
                seqno: entry.frames_seen + 1,
            };
            // Learn the connection's tenant as soon as an `Open` is parsed
            // (protocol ≥ 6; older frames decode to the anonymous tenant),
            // so the very first dispatch already lands in the right DRR
            // queue. Malformed frames stay tenantless — the worker answers
            // them with a typed error anyway.
            if frame.opcode == wire::op::OPEN {
                if let Ok((wire::Request::Open { tenant, .. }, _)) =
                    wire::Request::decode_deadline_at(frame.version, frame.opcode, &frame.payload)
                {
                    entry.conn.tenant.store(tenant, Ordering::Relaxed);
                }
            }
            entry.rpos += need;
            entry.frames_seen += 1;
            let mut q = lock(&entry.conn.q);
            if !q.open {
                break;
            }
            q.frames.push_back(frame);
            let full = q.frames.len() >= FRAME_QUEUE_DEPTH;
            if full {
                q.paused = true;
            }
            if !q.executing {
                // Claim the dispatch slot now (no worker may grab the
                // conn until the batch is fully parsed and priced below).
                q.executing = true;
                enqueue = true;
            }
            drop(q);
            if full {
                break;
            }
        }
        if enqueue {
            let cost = lock(&entry.conn.q).frames.len() as u64;
            pool.push(Arc::clone(&entry.conn), cost);
        }
        // Compact the consumed prefix once it dominates the buffer.
        if entry.rpos == entry.rbuf.len() {
            entry.rbuf.clear();
            entry.rpos = 0;
        } else if entry.rpos > READ_CHUNK {
            entry.rbuf.drain(..entry.rpos);
            entry.rpos = 0;
        }
    }

    /// Drains queued reply bytes; closes the connection when its write
    /// buffer empties with `close_after_flush` set (or the socket died).
    fn conn_writable(&mut self, token: usize) {
        let Some(entry) = self.conns.get(&token) else { return };
        let conn = Arc::clone(&entry.conn);
        let (closed, close_now) = {
            let mut wq = lock(&conn.wq);
            try_flush(&conn.stream, &mut wq);
            let drained = wq.start >= wq.buf.len();
            (wq.closed, drained && wq.close_after_flush)
        };
        conn.wq_cv.notify_all();
        if closed || close_now {
            self.close_conn(token);
            return;
        }
        self.update_interest(token);
    }

    /// Recomputes and applies the interest set for one connection.
    fn update_interest(&mut self, token: usize) {
        let Some(entry) = self.conns.get_mut(&token) else { return };
        let want_read = {
            let q = lock(&entry.conn.q);
            q.open && !q.paused && !entry.draining
        };
        let want_write = {
            let wq = lock(&entry.conn.wq);
            wq.start < wq.buf.len() && !wq.closed
        };
        let want = Interest { readable: want_read, writable: want_write };
        if want != entry.interest
            && self.reactor.reregister(entry.conn.stream.as_raw_fd(), token, want).is_ok()
        {
            entry.interest = want;
        }
    }

    /// Applies worker notifications: resume reading on drained queues,
    /// drain freshly produced output.
    fn apply_notifications(&mut self) {
        let notify = Arc::clone(&self.notify);
        let rearm: Vec<usize> = std::mem::take(&mut *lock(&notify.rearm));
        for token in rearm {
            // Bytes may already be buffered past the parse stop: parse
            // them first (no new readable event will announce them), then
            // re-arm read interest.
            self.parse_frames(token);
            self.update_interest(token);
        }
        let flush: Vec<usize> = std::mem::take(&mut *lock(&notify.flush));
        for token in flush {
            self.conn_writable(token);
        }
    }

    /// Reaps connections whose idle timer expired — unless frames are
    /// queued or executing (the daemon itself is the bottleneck, which
    /// the classic daemon never punishes the client for either).
    fn fire_timers(&mut self) {
        for (_, token) in self.wheel.advance(self.clock.now_ms()) {
            let Some(entry) = self.conns.get_mut(&token) else { continue };
            entry.idle_timer = None;
            let busy = {
                let q = lock(&entry.conn.q);
                !q.frames.is_empty() || q.executing || q.fatal.is_some()
            };
            let has_output = {
                let wq = lock(&entry.conn.wq);
                wq.start < wq.buf.len()
            };
            if busy || has_output {
                self.reset_idle_timer(token);
            } else {
                self.close_conn(token);
            }
        }
    }

    fn reset_idle_timer(&mut self, token: usize) {
        let Some(entry) = self.conns.get_mut(&token) else { return };
        let Some(t) = entry.timeout else { return };
        if let Some(id) = entry.idle_timer.take() {
            self.wheel.cancel(id);
        }
        entry.idle_timer =
            Some(self.wheel.schedule(self.clock.now_ms().saturating_add(dur_ms(t)), token));
    }

    /// Tears one connection down: deregister, sever, unblock producers.
    fn close_conn(&mut self, token: usize) {
        let Some(entry) = self.conns.remove(&token) else { return };
        if let Some(id) = entry.idle_timer {
            self.wheel.cancel(id);
        }
        let _ = self.reactor.deregister(entry.conn.stream.as_raw_fd());
        {
            let mut q = lock(&entry.conn.q);
            q.open = false;
            q.frames.clear();
            q.fatal = None;
        }
        {
            let mut wq = lock(&entry.conn.wq);
            wq.closed = true;
            wq.buf.clear();
            wq.start = 0;
        }
        entry.conn.wq_cv.notify_all();
        entry.conn.stream.shutdown_both();
    }
}

/// Records a framing-level fatal error: the worker delivers the error
/// reply after the frames already queued, then closes the connection.
fn fatal_framing(entry: &mut ConnEntry, pool: &Arc<Pool>, e: ProtocolError) {
    entry.draining = true;
    let mut q = lock(&entry.conn.q);
    if !q.open {
        return;
    }
    q.fatal = Some(e);
    if !q.executing {
        q.executing = true;
        let cost = (q.frames.len() as u64).max(1);
        drop(q);
        pool.push(Arc::clone(&entry.conn), cost);
    }
}

/// Writes as much of `wq` as the socket accepts right now.
fn try_flush(stream: &NetStream, wq: &mut WriteBuf) {
    let mut w: &NetStream = stream;
    while wq.start < wq.buf.len() {
        match w.write(&wq.buf[wq.start..]) {
            Ok(0) => {
                wq.closed = true;
                break;
            }
            Ok(n) => wq.start += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                wq.closed = true;
                break;
            }
        }
    }
    if wq.start >= wq.buf.len() || wq.closed {
        wq.buf.clear();
        wq.start = 0;
    }
}

// ---------------------------------------------------------------------------
// Worker side

fn worker_loop(shared: &Shared, pool: &Pool, notify: &Notify) {
    while let Some(conn) = pool.next_job() {
        process_conn(shared, pool, notify, &conn);
    }
}

enum Outcome {
    Continue,
    CloseConn,
    DaemonCrashed,
}

/// Executes one connection's queued frames in FIFO order, up to
/// [`WORKER_BURST`] per dispatch (then requeues for fairness).
fn process_conn(shared: &Shared, pool: &Pool, notify: &Notify, conn: &Arc<Conn>) {
    let mut processed = 0usize;
    loop {
        let (frame, mut chunk, shed) = {
            let mut q = lock(&conn.q);
            if !q.open {
                q.frames.clear();
                q.executing = false;
                return;
            }
            match q.frames.pop_front() {
                Some(f) => {
                    let chunk = q.chunk.take();
                    let shed = q.shed;
                    drop(q);
                    (f, chunk, shed)
                }
                None => {
                    if let Some(fatal) = q.fatal.take() {
                        drop(q);
                        queue_reply(conn, notify, PROTOCOL_VERSION, 0, &Reply::Error(fatal), None);
                        flush_and_close(conn, notify);
                        lock(&conn.q).executing = false;
                        return;
                    }
                    finish_dispatch(conn, notify, &mut q);
                    return;
                }
            }
        };
        let outcome = execute_frame(shared, notify, conn, &frame, &mut chunk, shed);
        {
            let mut q = lock(&conn.q);
            q.chunk = chunk;
            if q.paused && q.frames.len() <= FRAME_QUEUE_RESUME {
                q.paused = false;
                notify.push_rearm(conn.token);
            }
        }
        match outcome {
            Outcome::Continue => {}
            Outcome::CloseConn => {
                let mut q = lock(&conn.q);
                q.open = false;
                q.frames.clear();
                q.executing = false;
                return;
            }
            Outcome::DaemonCrashed => {
                shared.crash();
                lock(&conn.q).executing = false;
                return;
            }
        }
        processed += 1;
        if processed >= WORKER_BURST {
            let mut q = lock(&conn.q);
            if q.frames.is_empty() && q.fatal.is_none() {
                finish_dispatch(conn, notify, &mut q);
            } else {
                // More work: requeue with `executing` held, so no other
                // worker can interleave this connection's frames.
                let cost = q.frames.len() as u64;
                drop(q);
                pool.push(Arc::clone(conn), cost);
            }
            return;
        }
    }
}

/// Ends a dispatch with an empty queue: release the connection and ask
/// the reactor to resume reads if they were paused.
fn finish_dispatch(conn: &Conn, notify: &Notify, q: &mut ConnQ) {
    q.executing = false;
    let rearm = q.paused;
    if rearm {
        q.paused = false;
    }
    if rearm {
        notify.push_rearm(conn.token);
    }
}

/// The per-frame prologue + dispatch of the classic daemon's
/// [`serve_connection`](super::serve_connection) loop, executed on a
/// worker. Semantics are replicated exactly: fault hook first (delays
/// sleep *here*, stalling only this connection), then admission, then
/// [`handle_frame`](super::handle_frame), then the reply (with injected
/// truncation severing the connection) and crash suppression.
fn execute_frame(
    shared: &Shared,
    notify: &Notify,
    conn: &Conn,
    frame: &QueuedFrame,
    chunk: &mut Option<super::ChunkWrite>,
    shed: bool,
) -> Outcome {
    if shed {
        if frame.version >= 5 {
            let reply = Reply::Overloaded { retry_after_ms: OVERLOADED_RETRY_MS };
            queue_reply(conn, notify, frame.version, frame.request_id, &reply, None);
        }
        flush_and_close(conn, notify);
        return Outcome::CloseConn;
    }
    if let Some(fault) = &shared.fault {
        match fault.on_frame(frame.seqno) {
            FrameFault::None => {}
            FrameFault::Drop => {
                flush_and_close(conn, notify);
                return Outcome::CloseConn;
            }
            FrameFault::Kill => return Outcome::DaemonCrashed,
        }
    }
    // Per-tenant quota first (cheapest check): a tenant over its
    // inflight cap is shed with `Busy` before it can consume one of the
    // daemon-wide admission slots. Pre-v5 frames cannot carry a shed
    // verdict, and pre-v6 connections are the anonymous tenant anyway.
    let tenant = conn.tenant.load(Ordering::Relaxed);
    let tenant_entered = frame.version >= 5 && tenant != 0;
    if tenant_entered && !shared.enter_tenant(tenant) {
        let reply = Reply::Busy { retry_after_ms: BUSY_RETRY_MS };
        queue_reply(conn, notify, frame.version, frame.request_id, &reply, None);
        return Outcome::Continue;
    }
    let admitted = if frame.version >= 5 {
        shared.try_acquire_slot()
    } else {
        shared.acquire_slot();
        true
    };
    if !admitted {
        if tenant_entered {
            shared.leave_tenant(tenant);
        }
        let reply = Reply::Busy { retry_after_ms: BUSY_RETRY_MS };
        queue_reply(conn, notify, frame.version, frame.request_id, &reply, None);
        return Outcome::Continue;
    }
    let handled = super::handle_frame(
        shared,
        chunk,
        frame.version,
        frame.opcode,
        &frame.payload,
        frame.received,
    );
    let crashed = shared.fault_crashed();
    let mut shutdown = false;
    let mut severed = false;
    if !crashed {
        let truncate = shared.fault.as_ref().and_then(|f| f.truncate_reply_at(frame.seqno));
        match handled {
            Handled::One(reply, stop) => {
                shutdown = stop;
                queue_reply(conn, notify, frame.version, frame.request_id, &reply, truncate);
            }
            Handled::Stream(mut gather) => {
                let mut first = true;
                loop {
                    let (reply, last) = gather.next_chunk();
                    let t = if first { truncate } else { None };
                    first = false;
                    queue_reply(conn, notify, frame.version, frame.request_id, &reply, t);
                    if t.is_some() || last {
                        break;
                    }
                }
            }
        }
        severed = truncate.is_some();
    }
    shared.release_slot();
    if tenant_entered {
        shared.leave_tenant(tenant);
    }
    if crashed {
        // An injected kill or torn write fired while this request was in
        // flight: the "crashed" daemon never replies.
        return Outcome::DaemonCrashed;
    }
    if severed {
        flush_and_close(conn, notify);
        return Outcome::CloseConn;
    }
    if shutdown {
        // `handle_frame` set `stopping`; deliver the `Ok`, close this
        // connection, and wake everything that might be parked on the
        // old state — the reactor's poll, blocked admission waits, and
        // the scrub thread's pause.
        flush_and_close(conn, notify);
        shared.inflight_cv.notify_all();
        shared.shutdown_cv.notify_all();
        notify.waker.wake();
        return Outcome::CloseConn;
    }
    Outcome::Continue
}

/// Encodes one reply frame into the connection's write buffer (applying
/// an injected truncation), attempts an immediate non-blocking drain, and
/// leaves the reactor to finish the rest. Parks when the buffer is over
/// [`WRITE_BUF_CAP`] — slow-reader backpressure bounded per connection.
fn queue_reply(
    conn: &Conn,
    notify: &Notify,
    version: u8,
    request_id: u64,
    reply: &Reply,
    truncate: Option<u64>,
) {
    let mut payload = Vec::new();
    reply.encode_payload_at_into(version, &mut payload);
    let mut frame = Vec::with_capacity(payload.len() + 16);
    let _ = wire::write_frame_at(&mut frame, version, reply.opcode(), request_id, &payload);
    if let Some(keep) = truncate {
        frame.truncate((keep as usize).min(frame.len()));
    }
    let mut wq = lock(&conn.wq);
    while wq.buf.len() - wq.start > WRITE_BUF_CAP && !wq.closed {
        wq = conn.wq_cv.wait(wq).unwrap_or_else(|e| e.into_inner());
    }
    if wq.closed {
        return;
    }
    wq.buf.extend_from_slice(&frame);
    try_flush(&conn.stream, &mut wq);
    let leftover = wq.start < wq.buf.len();
    drop(wq);
    if leftover {
        notify.push_flush(conn.token);
    }
}

/// Closes a connection from the worker side: no more frames, flush what
/// is queued, and let the reactor deregister + shut the socket down.
fn flush_and_close(conn: &Conn, notify: &Notify) {
    {
        let mut q = lock(&conn.q);
        q.open = false;
        q.frames.clear();
    }
    {
        let mut wq = lock(&conn.wq);
        wq.close_after_flush = true;
        try_flush(&conn.stream, &mut wq);
    }
    // Always notify: even a fully drained buffer needs the reactor to
    // deregister the fd and drop its entry.
    notify.push_flush(conn.token);
}

/// Duration → wheel milliseconds (rounds up so sub-ms budgets still arm).
fn dur_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX).max(u64::from(!d.is_zero()))
}

#[cfg(test)]
mod tests {
    use super::Drr;

    #[test]
    fn drr_serves_tenants_evenly_whatever_their_backlog() {
        // Tenant 1 floods 90 unit-cost jobs; tenants 2 and 3 queue 10 each.
        // While every tenant has backlog, service must stay even — the
        // flood buys tenant 1 nothing.
        let mut drr = Drr::new(4);
        for i in 0..90 {
            drr.push(1, (1u32, i), 1);
        }
        for i in 0..10 {
            drr.push(2, (2u32, i), 1);
            drr.push(3, (3u32, i), 1);
        }
        // Two full rounds: every tenant with backlog earns exactly two
        // quanta (8 unit jobs), whatever it has queued.
        let mut served = [0usize; 4];
        for _ in 0..24 {
            let (tenant, _) = drr.pop().expect("backlog remains");
            served[tenant as usize] += 1;
        }
        assert_eq!(served, [0, 8, 8, 8], "flooding tenant held to its fair share: {served:?}");
        // Once the quiet tenants drain, the flood gets the leftover.
        let mut total = served;
        while let Some((tenant, _)) = drr.pop() {
            total[tenant as usize] += 1;
        }
        assert_eq!(total, [0, 90, 10, 10]);
        assert!(drr.pop().is_none());
    }

    #[test]
    fn drr_charges_fat_bursts_more_than_singletons() {
        // Quantum 4: tenant 1's jobs cost 4 (full bursts), tenant 2's cost
        // 1. Per round, tenant 1 lands one job for tenant 2's four — equal
        // *service*, not equal job count.
        let mut drr = Drr::new(4);
        for i in 0..4 {
            drr.push(1, (1u32, i), 4);
        }
        for i in 0..16 {
            drr.push(2, (2u32, i), 1);
        }
        let mut served = [0usize; 3];
        for _ in 0..10 {
            let (tenant, _) = drr.pop().expect("backlog remains");
            served[tenant as usize] += 1;
        }
        assert_eq!(served[1], 2, "2 fat jobs = 8 service units: {served:?}");
        assert_eq!(served[2], 8, "8 thin jobs = 8 service units: {served:?}");
    }

    #[test]
    fn drr_drops_unspent_deficit_when_a_tenant_goes_idle() {
        let mut drr = Drr::new(4);
        drr.push(1, 1u32, 1);
        assert_eq!(drr.pop(), Some(1));
        assert!(drr.pop().is_none());
        // The tenant re-arrives with no banked credit: costs above the
        // clamped quantum are paid at quantum price, one per recharge.
        drr.push(1, 2u32, 100);
        drr.push(2, 3u32, 1);
        assert_eq!(drr.pop(), Some(2), "clamped cost serves after one recharge");
        assert_eq!(drr.pop(), Some(3));
        assert!(drr.pop().is_none());
    }
}
