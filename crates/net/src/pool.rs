//! Process-wide shared mux pool.
//!
//! Many logical [`Session`](crate::session::Session)s in the same process
//! usually talk to the same set of I/O nodes.  Giving each its own [`Mux`]
//! means one TCP connection *per node per session* plus a driver thread per
//! session — fine for a handful of sessions, ruinous for a serving tier with
//! thousands of short-lived ones.  The pool keeps **one warm driver (and one
//! connection per node) per distinct address set** and hands sessions cheap
//! leases on it.
//!
//! Isolation is preserved per lease, not per driver:
//!
//! * every request submitted through a [`MuxHandle`] carries the *handle's*
//!   deadline and retry budget (via [`Mux::submit_with`]), so one tenant
//!   burning its budget cannot drain a sibling's;
//! * reply routing already keys on the per-request serial, so interleaved
//!   sessions never see each other's frames;
//! * node breakers live in the shared driver — a dead node is dead for
//!   everyone, which is exactly the signal a breaker exists to amortise.
//!
//! Dropping a `MuxHandle` **returns the lease**; it never closes the shared
//! sockets.  The warm entry survives at zero leases so the next
//! `Session::connect_pooled` for the same nodes starts without a handshake.
//! A dedicated (unpooled) handle owns the last `Arc` on its mux, so dropping
//! it still tears the driver down exactly as before pooling existed.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use crate::error::NetError;
use crate::mux::{Mux, ReplySlot};
use crate::resilience::{Deadline, RetryBudget};
use crate::wire::Request;

/// One warm driver shared by every lease with the same address set.
struct PoolEntry {
    mux: Arc<Mux>,
    /// Live leases; 0 means warm-but-idle, *not* closed.
    leases: usize,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn registry() -> &'static Mutex<HashMap<Vec<String>, PoolEntry>> {
    static POOL: OnceLock<Mutex<HashMap<Vec<String>, PoolEntry>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A session's view of a mux: either a private driver or a lease on a
/// pooled one.  Deadline and retry budget are handle-local either way, so
/// the calling session keeps its own failure-handling state.
pub struct MuxHandle {
    mux: Arc<Mux>,
    /// `Some(key)`: leased from the pool, returned (not closed) on drop.
    lease: Option<Vec<String>>,
    deadline: Deadline,
    budget: Arc<RetryBudget>,
}

impl MuxHandle {
    /// Private driver owned by one session — pre-pool behaviour.
    pub fn dedicated(addrs: &[String], budget: Arc<RetryBudget>) -> Self {
        Self {
            mux: Arc::new(Mux::new(addrs, Arc::clone(&budget))),
            lease: None,
            deadline: Deadline::none(),
            budget,
        }
    }

    /// Lease the process-wide driver for `addrs`, spawning it warm on first
    /// use.  A dead driver (all nodes lost, thread exited) is replaced
    /// rather than handed out.
    pub fn pooled(addrs: &[String], budget: Arc<RetryBudget>) -> Self {
        let key: Vec<String> = addrs.to_vec();
        let mux = {
            let mut reg = lock(registry());
            match reg.get_mut(&key) {
                Some(entry) if entry.mux.alive() => {
                    entry.leases += 1;
                    Arc::clone(&entry.mux)
                }
                _ => {
                    // First lease for this address set, or the previous
                    // driver died: build a fresh one.  The driver's own
                    // budget only governs plain `submit` callers; leases
                    // always attach their session budget per request.
                    let mux = Arc::new(Mux::new(addrs, Arc::new(RetryBudget::for_session())));
                    reg.insert(key.clone(), PoolEntry { mux: Arc::clone(&mux), leases: 1 });
                    mux
                }
            }
        };
        Self { mux, lease: Some(key), deadline: Deadline::none(), budget }
    }

    /// Whether this handle shares its driver through the pool.
    #[must_use]
    pub fn is_pooled(&self) -> bool {
        self.lease.is_some()
    }

    /// Submit on behalf of this handle: the request carries the handle's
    /// deadline and budget so pooled siblings stay isolated.
    pub fn submit(&self, node: usize, request: Request) -> Result<ReplySlot, NetError> {
        self.mux.submit_with(node, request, self.deadline, Arc::clone(&self.budget))
    }

    /// Set the deadline stamped on subsequent submissions.  Dedicated
    /// handles also push it into the driver so already-queued requests are
    /// clamped (the historical single-owner behaviour); pooled handles must
    /// not, as the driver default is shared.
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = deadline;
        if self.lease.is_none() {
            self.mux.set_deadline(deadline);
        }
    }

    /// Ask the driver to rebuild the connection to `node`.
    pub fn reset_node(&self, node: usize) {
        self.mux.reset_node(node);
    }

    /// Test hook: sever `node`'s connection mid-flight.
    pub fn arm_kill(&self, node: usize) {
        self.mux.arm_kill(node);
    }

    /// Whether the driver still has any live node.
    #[must_use]
    pub fn alive(&self) -> bool {
        self.mux.alive()
    }

    /// Number of nodes the driver fans out to.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.mux.nodes()
    }
}

impl Drop for MuxHandle {
    fn drop(&mut self) {
        if let Some(key) = self.lease.take() {
            let mut reg = lock(registry());
            if let Some(entry) = reg.get_mut(&key) {
                entry.leases = entry.leases.saturating_sub(1);
            }
            // The entry — and its warm driver and sockets — stays for the
            // next lease.  That persistence is the pool's entire point; a
            // dedicated handle's Arc drop is what tears a driver down.
        }
        // For dedicated handles this Arc is the last one, so the Mux's own
        // Drop (stop + join the driver thread) runs here as it always did.
    }
}

/// Drop warm drivers with zero live leases; returns how many were closed.
/// Used by long-lived processes that know a node set is gone for good.
pub fn evict_idle() -> usize {
    let mut reg = lock(registry());
    let before = reg.len();
    reg.retain(|_, entry| entry.leases > 0);
    before - reg.len()
}

/// Observability: `(drivers, live_leases)` across the whole pool.
#[must_use]
pub fn pool_stats() -> (usize, usize) {
    let reg = lock(registry());
    let leases = reg.values().map(|e| e.leases).sum();
    (reg.len(), leases)
}
