//! An offline, dependency-free benchmark harness exposing the subset of the
//! `criterion` crate API this workspace's benches use.
//!
//! The real `criterion` cannot be vendored into hermetic build environments,
//! so this crate provides compatible `Criterion`, `BenchmarkGroup`,
//! `Bencher`, `BenchmarkId` and `Throughput` types plus the
//! `criterion_group!` / `criterion_main!` macros. Measurements are simple
//! wall-clock means over `sample_size` timed runs after a short warm-up —
//! good enough for the relative comparisons the benches print, with no
//! statistical machinery.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level harness handle; configures and runs benchmarks.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed runs each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_label(), self.sample_size, None, |b| f(b));
        self
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Declares the volume of data one iteration processes, so results can
    /// be reported as a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: impl IntoLabel, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group. (No-op here; results print as they complete.)
    pub fn finish(self) {}
}

/// A two-part benchmark name, e.g. function + parameter value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self { label: format!("{function}/{parameter}") }
    }
}

/// Conversion into a printable benchmark label; lets `bench_function` accept
/// both plain strings and [`BenchmarkId`]s.
pub trait IntoLabel {
    /// The label under which results are reported.
    fn into_label(self) -> String;
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Data volume processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes handled by one iteration.
    Bytes(u64),
    /// Abstract elements handled by one iteration.
    Elements(u64),
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated runs of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up: one untimed run.
    let mut warm = Bencher { elapsed: Duration::ZERO, iters: 1 };
    f(&mut warm);

    let mut bench = Bencher { elapsed: Duration::ZERO, iters: 1 };
    for _ in 0..sample_size {
        f(&mut bench);
    }
    let total_iters = bench.iters * sample_size as u64;
    if total_iters == 0 || bench.elapsed.is_zero() {
        println!("{label:<48} (no measurement)");
        return;
    }
    let per_iter = bench.elapsed.as_secs_f64() / total_iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(b) => format!("  {:>10}/s", human_bytes(b as f64 / per_iter)),
        Throughput::Elements(e) => format!("  {:>10.0} elem/s", e as f64 / per_iter),
    });
    println!("{label:<48} time: {:>12}{}", human_time(per_iter), rate.unwrap_or_default());
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn human_bytes(rate: f64) -> String {
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MIB: f64 = 1024.0 * 1024.0;
    const KIB: f64 = 1024.0;
    if rate >= GIB {
        format!("{:.2} GiB", rate / GIB)
    } else if rate >= MIB {
        format!("{:.2} MiB", rate / MIB)
    } else if rate >= KIB {
        format!("{:.2} KiB", rate / KIB)
    } else {
        format!("{rate:.0} B")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro. Both
/// the `name = ...; config = ...; targets = ...` form and the positional
/// form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function(BenchmarkId::new("sum", 64), |b| b.iter(|| (0u64..64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(21) * 2));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn labels_compose() {
        assert_eq!(BenchmarkId::new("f", 8).into_label(), "f/8");
        assert_eq!("plain".into_label(), "plain");
    }

    #[test]
    fn formatting() {
        assert_eq!(human_time(2.5e-9), "2.50 ns");
        assert_eq!(human_time(0.004), "4.00 ms");
        assert_eq!(human_bytes(2048.0), "2.00 KiB");
    }
}
