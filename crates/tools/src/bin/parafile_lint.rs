//! `parafile-lint` — audit partition descriptions for model violations and
//! pathologies.
//!
//! ```text
//! parafile-lint <part.json>...            # audit partition files ('-' = stdin)
//! parafile-lint --pair <a.json> <b.json>  # also check the pair's aligned period
//! parafile-lint --scenarios               # audit the paper's built-in layouts
//! parafile-lint --source <file.rs>...     # source lints (PA040+) on hot paths
//! ```
//!
//! Options: `--json` for machine-readable reports, `--budget <bytes>` to
//! change the period budget (default 4 MiB).
//!
//! Unlike `pf`, the linter audits the *raw* spec tree: a file describing a
//! broken pattern produces diagnostics (with `PAxxx` codes), not a parse
//! refusal. Exit code is 1 when any error-severity diagnostic fires, 0 when
//! the targets are clean or carry only warnings, and 2 on usage or I/O
//! problems.

use arraydist::matrix::MatrixLayout;
use jsonlite::{obj, Json, ToJson};
use parafile_audit::{
    audit_pair, audit_partition, audit_pattern, audit_source, AuditConfig, AuditReport, RawElement,
    RawFalls, RawPattern, SourceConfig,
};
use pf_tools::{read_input, FallsSpec, PartitionSpec, ToolError};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("parafile-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> ToolError {
    ToolError::Spec(
        "usage: parafile-lint [--json] [--budget <bytes>] \
         (<part.json>... | --pair <a.json> <b.json> | --scenarios | --source <file.rs>...)"
            .into(),
    )
}

/// One audited target: where the pattern came from and what the audit found.
struct Outcome {
    target: String,
    report: AuditReport,
}

fn run(args: &[String]) -> Result<bool, ToolError> {
    let mut json_output = false;
    let mut budget: Option<u64> = None;
    let mut scenarios = false;
    let mut pair = false;
    let mut source = false;
    let mut files: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json_output = true,
            "--scenarios" => scenarios = true,
            "--pair" => pair = true,
            "--source" => source = true,
            "--budget" => {
                let v = it
                    .next()
                    .ok_or_else(|| ToolError::Spec("--budget needs a byte count".into()))?;
                budget = Some(v.parse().map_err(|_| {
                    ToolError::Spec(format!("--budget must be a number, got {v:?}"))
                })?);
            }
            "-h" | "--help" => return Err(usage()),
            other if other.starts_with("--") => {
                return Err(ToolError::Spec(format!("unknown option {other:?}")))
            }
            other => files.push(other.to_owned()),
        }
    }

    let cfg = budget.map_or_else(AuditConfig::default, AuditConfig::with_budget);

    let outcomes = if source {
        if files.is_empty() || pair || scenarios {
            return Err(usage());
        }
        let src_cfg = SourceConfig::parafile_defaults();
        let mut out = Vec::with_capacity(files.len());
        for f in &files {
            let text = std::fs::read_to_string(f)
                .map_err(|e| ToolError::Spec(format!("cannot read {f}: {e}")))?;
            out.push(Outcome { target: f.clone(), report: audit_source(f, &text, &src_cfg) });
        }
        out
    } else if scenarios {
        if !files.is_empty() || pair {
            return Err(usage());
        }
        audit_scenarios(&cfg)
    } else if pair {
        if files.len() != 2 {
            return Err(ToolError::Spec("--pair needs exactly two files".into()));
        }
        let a = load_raw(&files[0])?;
        let b = load_raw(&files[1])?;
        vec![
            Outcome { target: files[0].clone(), report: audit_pattern(&a, &cfg) },
            Outcome { target: files[1].clone(), report: audit_pattern(&b, &cfg) },
            Outcome {
                target: format!("pair({}, {})", files[0], files[1]),
                report: audit_pair(&a, &b, &cfg),
            },
        ]
    } else {
        if files.is_empty() {
            return Err(usage());
        }
        let mut out = Vec::with_capacity(files.len());
        for f in &files {
            let raw = load_raw(f)?;
            out.push(Outcome { target: f.clone(), report: audit_pattern(&raw, &cfg) });
        }
        out
    };

    let clean = !outcomes.iter().any(|o| o.report.has_errors());
    if json_output {
        let targets: Vec<Json> = outcomes
            .iter()
            .map(|o| obj![("target", o.target.as_str()), ("report", o.report.to_json())])
            .collect();
        println!("{}", Json::Array(targets).render_pretty());
    } else {
        for o in &outcomes {
            if o.report.is_clean() {
                println!("OK    {}", o.target);
            } else {
                let kind = if o.report.has_errors() { "FAIL" } else { "WARN" };
                println!("{kind}  {}", o.target);
                for d in &o.report.diagnostics {
                    println!("      {d}");
                }
            }
        }
        let errors: usize = outcomes.iter().map(|o| o.report.error_count()).sum();
        let warnings: usize = outcomes.iter().map(|o| o.report.warning_count()).sum();
        println!("{} target(s) audited: {errors} error(s), {warnings} warning(s)", outcomes.len());
    }
    Ok(clean)
}

/// Loads a partition file as a raw (unvalidated) pattern tree.
///
/// Explicit `elements` specs go straight to the raw tree so that invalid
/// structures survive to the analyzer; the `matrix` shorthand is lowered
/// through the (always valid) generator.
fn load_raw(path: &str) -> Result<RawPattern, ToolError> {
    let spec = PartitionSpec::parse(&read_input(path)?)?;
    if spec.matrix.is_some() {
        return Ok(RawPattern::from_partition(&spec.to_partition()?));
    }
    Ok(RawPattern {
        displacement: spec.displacement,
        elements: spec
            .elements
            .iter()
            .map(|fams| RawElement::new(fams.iter().map(raw_falls).collect()))
            .collect(),
    })
}

fn raw_falls(spec: &FallsSpec) -> RawFalls {
    RawFalls {
        l: spec.l,
        r: spec.r,
        s: spec.s,
        n: spec.n,
        inner: spec.inner.iter().map(raw_falls).collect(),
    }
}

/// Audits the paper's built-in matrix layouts: every physical layout at a
/// sweep of sizes, plus each (logical row-block, physical) pair used by the
/// redistribution experiment.
fn audit_scenarios(cfg: &AuditConfig) -> Vec<Outcome> {
    let mut out = Vec::new();
    for dim in [64u64, 256, 1024] {
        for procs in [4u64, 16] {
            for layout in MatrixLayout::all() {
                let part = layout.partition(dim, dim, 1, procs);
                out.push(Outcome {
                    target: format!("matrix {dim}×{dim} p={procs} layout={}", layout.label()),
                    report: audit_partition(&part, cfg),
                });
            }
            // The experiment redistributes a row-block logical view onto
            // each physical layout; check the pairs' aligned periods too.
            let logical =
                RawPattern::from_partition(&MatrixLayout::RowBlocks.partition(dim, dim, 1, procs));
            for layout in MatrixLayout::all() {
                let physical = RawPattern::from_partition(&layout.partition(dim, dim, 1, procs));
                out.push(Outcome {
                    target: format!(
                        "pair {dim}×{dim} p={procs} logical=r physical={}",
                        layout.label()
                    ),
                    report: audit_pair(&logical, &physical, cfg),
                });
            }
        }
    }
    out
}
