//! `pf` — inspect and manipulate parallel-file partitions from the shell.
//!
//! ```text
//! pf example                              # emit a sample partition JSON
//! pf render  <part.json> [span]          # ASCII diagram of the pattern
//! pf map     <part.json> <elem> <offset> # file offset → element offset
//! pf unmap   <part.json> <elem> <offset> # element offset → file offset
//! pf owner   <part.json> <offset>        # which element owns a file byte
//! pf intersect <a.json> <ea> <b.json> <eb>   # intersection + projections
//! pf plan    <a.json> <b.json> [--stats] # plan summary (+ cache counters)
//! pf plan --stats                        # cache counters only (incl. persistent tier)
//! pf plan --purge                        # drop the persistent plan-cache file
//! pf serve   <addr> [--dir DIR] [--chaos SPEC] [--scrub SECS] [--workers N] [--tenant-quota N] [--no-fair]  # run an I/O-node daemon
//! pf chaos   <listen> <up1[,up2,…]> <SPEC> [--duration SECS] [--delay MS]  # fault proxy
//! pf io <a1,a2,…> demo <n> [--pipeline] [--replicas R] [--tenant T]  # matrix scenario over real daemons
//! pf io <a1,a2,…> work <reads> [--deadline MS] [--replicas R] [--tenant T]  # deadline-bounded read workload
//! pf io <a1,a2,…> stat <file>            # per-subfile daemon statistics
//! pf io <a1,a2,…> fetch <file>           # reassembled length + CRC32C (read path)
//! pf io <a1,a2,…> probe                  # ping every daemon, print health/epoch
//! pf io <a1,a2,…> shutdown               # stop the daemons
//! pf scrub <a1,a2,…> <file> [--replicas R] [--verify]  # replica checksum walk + repair
//! ```
//!
//! A chaos SPEC is a bare seed (`42`, expanded deterministically into one
//! failure scenario) or `family:seed` with family `drop`, `truncate`,
//! `flush`, `kill`, `torn`, or `delay`. `pf serve --chaos` injects
//! server-side faults (flush failures, kills, torn scatter writes) and,
//! when a crash fault fires, restarts the daemon on the same address with
//! the crash disarmed — one seed, one crash, one recovery. `pf chaos`
//! attacks the transport of an untouched daemon instead; with a
//! comma-separated upstream list it runs one proxy per replica daemon and
//! reports per-replica outcome counters at the end of a `--duration`
//! window. `pf chaos … --delay MS` holds every proxied frame back by a
//! fixed latency — the deterministic "one slow replica" scenario hedged
//! reads and circuit breakers (DESIGN.md §16) are demonstrated against.
//!
//! `pf serve --scrub SECS` arms the daemon-side detection loop: every
//! interval the daemon re-verifies its stored checksums and surfaces
//! mismatches in `stat` (`checksum_errors`), so a `pf scrub` sweep from
//! any client can find and repair them. `pf scrub --verify` probes and
//! votes without repairing (exit 5 when redundancy is degraded).
//!
//! Set `PF_PLAN_CACHE=<path>` to back the plan cache with a persistent
//! on-disk tier: compiled view plans survive the process, so a restarted
//! `pf` (or daemon) starts warm. `pf plan --stats` reports the tier's
//! entries/bytes and hit/miss/load-failure counters; `pf plan --purge`
//! deletes the file. Corrupt or version-stale cache files silently degrade
//! to cold compiles — never an error.
//!
//! `pf io … --tenant T` stamps every `Open` with tenant id `T` (protocol
//! ≥ 6). A reactor daemon (`pf serve --workers N`) dispatches queued
//! frames per-tenant with deficit round robin and, with
//! `--tenant-quota N`, sheds a tenant's frames beyond N in flight;
//! `--no-fair` reverts to the single FIFO (one hot tenant can starve the
//! rest — see the serving bench).
//!
//! Partition files use the JSON forms documented in the `pf-tools` library;
//! pass `-` to read from stdin.

use arraydist::matrix::MatrixLayout;
use parafile::matching::MatchingDegree;
use parafile::redist::{intersect_elements, Projection};
use parafile::{Mapper, PlanEngine};
use pf_tools::{load_partition, PartitionSpec, ToolError};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pf: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ToolError {
    ToolError::Spec(
        "usage: pf <example|render|map|unmap|owner|intersect|plan|serve|chaos|io|scrub> [args…]\n\
         see `crates/tools/src/bin/pf.rs` for details"
            .into(),
    )
}

fn net_err(e: parafile_net::NetError) -> ToolError {
    ToolError::Spec(e.to_string())
}

fn parse_u64(s: &str, what: &str) -> Result<u64, ToolError> {
    s.parse().map_err(|_| ToolError::Spec(format!("{what} must be a number, got {s:?}")))
}

/// Strips a `--replicas R` flag (default 1) out of an argument slice,
/// returning the remaining arguments in order.
fn split_replicas_flag(args: &[String]) -> Result<(Vec<&String>, usize, u32), ToolError> {
    let mut replicas = 1usize;
    let mut tenant = 0u32;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--replicas" {
            let r = it.next().ok_or_else(usage)?;
            replicas = r
                .parse()
                .map_err(|_| ToolError::Spec(format!("--replicas must be a number, got {r:?}")))?;
        } else if a == "--tenant" {
            let t = it.next().ok_or_else(usage)?;
            tenant = t
                .parse()
                .map_err(|_| ToolError::Spec(format!("--tenant must be a number, got {t:?}")))?;
        } else {
            rest.push(a);
        }
    }
    Ok((rest, replicas, tenant))
}

/// `pf plan --stats`: in-memory LRU counters plus, when `PF_PLAN_CACHE`
/// is set, the persistent tier's size and hit/miss/load-failure counters.
fn print_plan_stats(engine: &PlanEngine) {
    let stats = engine.stats();
    println!(
        "plan cache: views {} hit / {} miss / {} evicted ({} entries), \
         redists {} hit / {} miss / {} evicted ({} entries)",
        stats.views.hits,
        stats.views.misses,
        stats.views.evictions,
        stats.views.entries,
        stats.redists.hits,
        stats.redists.misses,
        stats.redists.evictions,
        stats.redists.entries
    );
    match (engine.persist_stats(), engine.persist_path()) {
        (Some(p), Some(path)) => println!(
            "persistent tier ({}): {} entries, {} bytes, {} hit / {} miss, \
             {} load failure(s)",
            path.display(),
            p.entries,
            p.bytes,
            p.hits,
            p.misses,
            p.load_failures
        ),
        _ => println!("persistent tier: disabled (set PF_PLAN_CACHE=<path> to enable)"),
    }
}

fn parse_elem(s: &str, part: &parafile::Partition) -> Result<usize, ToolError> {
    let e: usize = s
        .parse()
        .map_err(|_| ToolError::Spec(format!("element index must be a number, got {s:?}")))?;
    if e >= part.element_count() {
        return Err(ToolError::Spec(format!(
            "element {e} out of range (partition has {})",
            part.element_count()
        )));
    }
    Ok(e)
}

fn run(args: &[String]) -> Result<(), ToolError> {
    let cmd = args.first().ok_or_else(usage)?;
    match cmd.as_str() {
        "example" => {
            println!("{}", PartitionSpec::example().to_json().render_pretty());
            Ok(())
        }
        "render" => {
            let part = load_partition(args.get(1).ok_or_else(usage)?)?;
            let span = match args.get(2) {
                Some(s) => parse_u64(s, "span")?,
                None => part.pattern().size(),
            };
            println!(
                "displacement {}, pattern size {}, {} elements",
                part.displacement(),
                part.pattern().size(),
                part.element_count()
            );
            println!("{}", falls::render_nested_set(part.pattern().elements(), span.min(256)));
            Ok(())
        }
        "map" => {
            let part = load_partition(args.get(1).ok_or_else(usage)?)?;
            let e = parse_elem(args.get(2).ok_or_else(usage)?, &part)?;
            let x = parse_u64(args.get(3).ok_or_else(usage)?, "offset")?;
            let m = Mapper::new(&part, e);
            match m.map(x) {
                Some(y) => println!("MAP_S{e}({x}) = {y}"),
                None => println!(
                    "file byte {x} does not map on element {e}; next = {}, prev = {}",
                    m.map_next(x),
                    m.map_prev(x).map_or("-".into(), |v| v.to_string())
                ),
            }
            Ok(())
        }
        "unmap" => {
            let part = load_partition(args.get(1).ok_or_else(usage)?)?;
            let e = parse_elem(args.get(2).ok_or_else(usage)?, &part)?;
            let y = parse_u64(args.get(3).ok_or_else(usage)?, "offset")?;
            println!("MAP_S{e}⁻¹({y}) = {}", Mapper::new(&part, e).unmap(y));
            Ok(())
        }
        "owner" => {
            let part = load_partition(args.get(1).ok_or_else(usage)?)?;
            let x = parse_u64(args.get(2).ok_or_else(usage)?, "offset")?;
            match part.owner_of(x) {
                Some(e) => {
                    let off = Mapper::new(&part, e).map(x).expect("owner selects the byte");
                    println!("file byte {x} → element {e}, offset {off}");
                }
                None => println!("file byte {x} lies below the displacement"),
            }
            Ok(())
        }
        "intersect" => {
            let a = load_partition(args.get(1).ok_or_else(usage)?)?;
            let ea = parse_elem(args.get(2).ok_or_else(usage)?, &a)?;
            let b = load_partition(args.get(3).ok_or_else(usage)?)?;
            let eb = parse_elem(args.get(4).ok_or_else(usage)?, &b)?;
            let inter = intersect_elements(&a, ea, &b, eb)?;
            if inter.is_empty() {
                println!("elements share no data");
                return Ok(());
            }
            println!(
                "intersection: {} bytes per period of {} (displacement {})",
                inter.bytes_per_period(),
                inter.period,
                inter.displacement
            );
            println!("  V ∩ S = {}", inter.set);
            let pa = Projection::compute(&inter, &a, ea);
            let pb = Projection::compute(&inter, &b, eb);
            println!("  PROJ on first  element: {} (period {})", pa.set, pa.period);
            println!("  PROJ on second element: {} (period {})", pb.set, pb.period);
            Ok(())
        }
        "plan" => {
            let show_stats = args.iter().any(|a| a == "--stats");
            let purge = args.iter().any(|a| a == "--purge");
            let positional: Vec<&String> =
                args[1..].iter().filter(|a| !a.starts_with("--")).collect();
            let engine = PlanEngine::global();
            if purge {
                match engine.persist_path() {
                    Some(path) => {
                        let shown = path.display().to_string();
                        engine
                            .purge_persist()
                            .map_err(|e| ToolError::Spec(format!("purge failed: {e}")))?;
                        println!("purged persistent plan cache at {shown}");
                    }
                    None => println!("no persistent plan cache configured (set PF_PLAN_CACHE)"),
                }
                if positional.is_empty() {
                    return Ok(());
                }
            }
            if positional.is_empty() && show_stats {
                // Counters-only mode: no partitions to plan, just report.
                print_plan_stats(engine);
                return Ok(());
            }
            let a = load_partition(positional.first().ok_or_else(usage)?)?;
            let b = load_partition(positional.get(1).ok_or_else(usage)?)?;
            let plan = engine.compile_redist(&a, &b)?;
            let m = MatchingDegree::from_plan(plan.plan(), &b);
            println!(
                "plan: {} bytes per period of {}, {} copy runs over {} active pairs",
                plan.bytes_per_period(),
                plan.period(),
                plan.runs_per_period(),
                plan.pairs().len()
            );
            println!(
                "matching: degree {:.3}, mean run {:.1} B (dst intrinsic fragments: {})",
                m.degree, m.mean_run_len, m.intrinsic_runs
            );
            for pair in plan.pairs() {
                println!(
                    "  {} → {}: {} runs, {} bytes/period",
                    pair.src_element,
                    pair.dst_element,
                    plan.runs_of(pair).count(),
                    plan.runs_of(pair).map(|r| r.len).sum::<u64>()
                );
            }
            if show_stats {
                print_plan_stats(engine);
            }
            Ok(())
        }
        "serve" => {
            let addr = args.get(1).ok_or_else(usage)?;
            let mut config = parafile_net::DaemonConfig::default();
            let mut rest = args[2..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--dir" => {
                        let dir = rest.next().ok_or_else(usage)?;
                        config.backend = clusterfile::StorageBackend::Directory(dir.into());
                    }
                    "--chaos" => {
                        let spec = rest.next().ok_or_else(usage)?;
                        config.fault =
                            Some(parafile_net::FaultPlan::parse(spec).map_err(ToolError::Spec)?);
                    }
                    "--scrub" => {
                        let secs = parse_u64(rest.next().ok_or_else(usage)?, "--scrub interval")?;
                        if secs == 0 {
                            return Err(ToolError::Spec("--scrub interval must be > 0".into()));
                        }
                        config.scrub_interval = Some(std::time::Duration::from_secs(secs));
                    }
                    "--workers" => {
                        // 0 = classic thread-per-connection; N > 0 = the
                        // epoll/poll reactor with an N-thread worker pool.
                        config.workers =
                            parse_u64(rest.next().ok_or_else(usage)?, "--workers")? as usize;
                    }
                    "--tenant-quota" => {
                        // Frames one tenant may hold in flight before its
                        // excess is shed with Busy (reactor mode only;
                        // tenant 0 — anonymous — is never metered).
                        config.tenant_inflight =
                            parse_u64(rest.next().ok_or_else(usage)?, "--tenant-quota")? as usize;
                    }
                    "--no-fair" => {
                        // Single FIFO across tenants: a hot client's
                        // connection count buys it proportional service.
                        config.fair = false;
                    }
                    other => return Err(ToolError::Spec(format!("unknown flag {other:?}"))),
                }
            }
            // With a chaos plan, a kill/torn-write fault "crashes" the
            // daemon; restart it on the same address with the crash
            // disarmed so the run demonstrates recovery, not a crash loop.
            let mut serve_addr = addr.clone();
            loop {
                let mut handle = parafile_net::serve(&serve_addr, config.clone())?;
                // Keep the OS-assigned port across restarts.
                serve_addr = handle.addr().to_string();
                println!("pf-io-node listening on {serve_addr}");
                handle.wait();
                if handle.fault_killed() {
                    println!("pf-io-node crashed (injected fault); restarting for recovery");
                    config.fault = config.fault.map(|p| p.disarmed_crashes());
                    drop(handle);
                    continue;
                }
                break;
            }
            println!("pf-io-node stopped");
            Ok(())
        }
        "chaos" => {
            let listens: Vec<String> =
                args.get(1).ok_or_else(usage)?.split(',').map(|s| s.trim().to_string()).collect();
            let upstreams: Vec<String> =
                args.get(2).ok_or_else(usage)?.split(',').map(|s| s.trim().to_string()).collect();
            let spec = args.get(3).ok_or_else(usage)?;
            let mut plan = parafile_net::FaultPlan::parse(spec).map_err(ToolError::Spec)?;
            let mut duration = None;
            let mut rest = args[4..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--duration" => {
                        duration = Some(parse_u64(rest.next().ok_or_else(usage)?, "--duration")?);
                    }
                    // Hold back *every* frame by a fixed latency on top of
                    // whatever the spec plans — the deterministic slow-node
                    // knob the README quickstart drives hedged reads with.
                    "--delay" => {
                        let ms = parse_u64(rest.next().ok_or_else(usage)?, "--delay")?;
                        plan.delay = Some((1, ms));
                    }
                    other => return Err(ToolError::Spec(format!("unknown flag {other:?}"))),
                }
            }
            if listens.len() > upstreams.len() {
                return Err(ToolError::Spec(format!(
                    "{} listen address(es) for {} upstream(s)",
                    listens.len(),
                    upstreams.len()
                )));
            }
            let planned = plan.plans_transport_fault();
            println!("chaos plan (seed {}): {plan:?}", plan.seed);
            // One proxy per replica daemon; missing listen addresses get
            // OS-assigned ports. Each proxy keeps its own outcome
            // counters, so a replicated run can tell which replica's
            // transport faulted and which misbehaved.
            let mut proxies = Vec::with_capacity(upstreams.len());
            for (i, upstream) in upstreams.iter().enumerate() {
                let listen = listens.get(i).map_or("127.0.0.1:0", String::as_str);
                let proxy = parafile_net::chaos_proxy(listen, upstream, plan.clone())?;
                println!("pf-chaos[{i}] proxying {} → {upstream}", proxy.addr());
                proxies.push(proxy);
            }
            // Without --duration the proxies run until killed; with it
            // they stop after the window so scripts can read the verdict.
            match duration {
                Some(secs) => {
                    std::thread::sleep(std::time::Duration::from_secs(secs));
                    for proxy in &mut proxies {
                        proxy.stop();
                    }
                }
                None => {
                    for proxy in &mut proxies {
                        proxy.wait();
                    }
                }
            }
            // Exit codes distinguish the run's verdict: 0 = the planned
            // fault fired (or the plan injects nothing at the transport)
            // and the protocol held; 3 = the planned fault never fired on
            // any replica; 4 = errors the plan does not explain flowed to
            // a client. The per-replica counters say which daemon's link
            // carried the fault.
            let mut fired = 0u64;
            let mut unexpected = 0u64;
            let mut delayed = 0u64;
            for (i, proxy) in proxies.iter().enumerate() {
                let outcome = proxy.outcome();
                println!(
                    "pf-chaos outcome[{i}] ({}): {} planned fault(s) fired, \
                     {} unexpected error(s), {} delayed frame(s)",
                    upstreams[i],
                    outcome.planned_faults,
                    outcome.unexpected_errors,
                    outcome.injected_delays
                );
                fired += outcome.planned_faults;
                unexpected += outcome.unexpected_errors;
                delayed += outcome.injected_delays;
            }
            println!(
                "pf-chaos outcome: {fired} planned fault(s) fired, \
                 {unexpected} unexpected error(s), {delayed} delayed frame(s) \
                 across {} replica(s)",
                proxies.len()
            );
            if unexpected > 0 {
                std::process::exit(4);
            }
            if planned && fired == 0 {
                std::process::exit(3);
            }
            if plan.delay.is_some() && delayed == 0 {
                std::process::exit(3);
            }
            Ok(())
        }
        "io" => {
            let (rest, replicas, tenant) = split_replicas_flag(&args[1..])?;
            let addrs: Vec<String> =
                rest.first().ok_or_else(usage)?.split(',').map(|s| s.trim().to_string()).collect();
            let sub = rest.get(1).ok_or_else(usage)?;
            let mut session = parafile_net::Session::connect_replicated(&addrs, replicas)
                .map_err(net_err)?
                .with_tenant(tenant);
            match sub.as_str() {
                // The paper's experiment over live daemons: row-block views
                // onto a column-block file, every node writes its view, the
                // reassembled file must match what was written. With
                // `--pipeline`, each view write is issued as a batch of
                // slices so the persistent node workers overlap the
                // per-node transfers (DESIGN.md §13).
                "demo" => {
                    let n = parse_u64(rest.get(2).ok_or_else(usage)?, "matrix dim")?;
                    let pipeline = rest[2..].iter().any(|a| *a == "--pipeline");
                    let nodes = addrs.len() as u64;
                    if n == 0 || n % nodes != 0 {
                        return Err(ToolError::Spec(format!(
                            "matrix dim must be a positive multiple of {nodes}"
                        )));
                    }
                    let physical = MatrixLayout::ColumnBlocks.partition(n, n, 1, nodes);
                    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, nodes);
                    let file_len = n * n;
                    let file = 1u64;
                    session.create_file(file, physical, file_len).map_err(net_err)?;
                    let start = std::time::Instant::now();
                    for c in 0..logical.element_count() {
                        session.set_view(c as u32, file, &logical, c).map_err(net_err)?;
                    }
                    let t_views = start.elapsed();
                    let start = std::time::Instant::now();
                    for c in 0..logical.element_count() {
                        let m = Mapper::new(&logical, c);
                        let len = logical.element_len(c, file_len)?;
                        let data: Vec<u8> = (0..len).map(|y| (m.unmap(y) % 251) as u8).collect();
                        if pipeline {
                            // One slice per row block: the whole view goes
                            // out as pipelined ops through the node workers.
                            let slice = (len / nodes).max(1);
                            let batch: Vec<parafile_net::BatchWrite<'_>> = (0..len)
                                .step_by(slice as usize)
                                .map(|lo| {
                                    let hi = (lo + slice - 1).min(len - 1);
                                    parafile_net::BatchWrite {
                                        lo_v: lo,
                                        hi_v: hi,
                                        data: &data[lo as usize..=hi as usize],
                                    }
                                })
                                .collect();
                            let reports =
                                session.write_batch(c as u32, file, &batch).map_err(net_err)?;
                            if let Some(r) = reports.iter().find(|r| !r.fully_applied()) {
                                return Err(ToolError::Spec(format!(
                                    "pipelined write left segments unapplied: {:?}",
                                    r.outcomes
                                )));
                            }
                        } else {
                            session.write(c as u32, file, 0, len - 1, &data).map_err(net_err)?;
                        }
                    }
                    let t_writes = start.elapsed();
                    let contents = session.file_contents(file).map_err(net_err)?;
                    for (x, &b) in contents.iter().enumerate() {
                        if b != (x as u64 % 251) as u8 {
                            return Err(ToolError::Spec(format!(
                                "verification failed at file byte {x}"
                            )));
                        }
                    }
                    println!(
                        "demo ok ({}): {n}×{n} matrix over {} I/O nodes — views {:.3} ms, \
                         writes {:.3} ms, {} bytes verified",
                        if pipeline { "pipelined" } else { "sequential" },
                        addrs.len(),
                        t_views.as_secs_f64() * 1e3,
                        t_writes.as_secs_f64() * 1e3,
                        contents.len()
                    );
                    Ok(())
                }
                // Deadline-bounded replicated read workload (DESIGN.md
                // §16): write one deterministic file, then time `reads`
                // whole-file reads under a fresh per-read deadline.
                // Succeeds only when every read lands inside its budget
                // with intact bytes; prints the hedge counter and each
                // node's breaker history either way, so a chaos proxy
                // holding one replica back (`pf chaos … --delay`) can be
                // seen hiding behind the hedge instead of the deadline.
                "work" => {
                    use parafile_net::{BreakerState, Deadline};
                    let reads = parse_u64(rest.get(2).ok_or_else(usage)?, "read count")?;
                    let mut deadline_ms = 1_000u64;
                    let mut it = rest[3..].iter();
                    while let Some(a) = it.next() {
                        match a.as_str() {
                            "--deadline" => {
                                deadline_ms =
                                    parse_u64(it.next().ok_or_else(usage)?, "--deadline")?;
                            }
                            other => {
                                return Err(ToolError::Spec(format!(
                                    "unknown work flag {other:?}"
                                )));
                            }
                        }
                    }
                    let nodes = addrs.len() as u64;
                    let n = nodes * 16;
                    let file = 1u64;
                    let file_len = n * n;
                    let physical = MatrixLayout::ColumnBlocks.partition(n, n, 1, nodes);
                    // One whole-file view: compute 0 sees every byte in
                    // file order, so each read fans out to all subfiles.
                    let whole = MatrixLayout::RowBlocks.partition(n, n, 1, 1);
                    session.create_file(file, physical, file_len).map_err(net_err)?;
                    session.set_view(0, file, &whole, 0).map_err(net_err)?;
                    let data: Vec<u8> = (0..file_len).map(|x| (x % 251) as u8).collect();
                    session.write(0, file, 0, file_len - 1, &data).map_err(net_err)?;

                    let mut worst = std::time::Duration::ZERO;
                    let mut states: Vec<BreakerState> =
                        (0..addrs.len()).map(|s| session.breaker_state(s)).collect();
                    let mut transitions = vec![0u64; addrs.len()];
                    let mut digest = 0u32;
                    for i in 0..reads {
                        session.set_deadline(Deadline::within(std::time::Duration::from_millis(
                            deadline_ms,
                        )));
                        let start = std::time::Instant::now();
                        let bytes = session.read(0, file, 0, file_len - 1).map_err(|e| {
                            ToolError::Spec(format!("read {i} failed under deadline: {e}"))
                        })?;
                        let took = start.elapsed();
                        worst = worst.max(took);
                        if took > std::time::Duration::from_millis(deadline_ms) {
                            return Err(ToolError::Spec(format!(
                                "read {i} missed the {deadline_ms} ms deadline \
                                 ({:.1} ms)",
                                took.as_secs_f64() * 1e3
                            )));
                        }
                        if bytes != data {
                            return Err(ToolError::Spec(format!("read {i} returned wrong bytes")));
                        }
                        digest = clusterfile::crc32c(&bytes);
                        for (s, t) in transitions.iter_mut().enumerate() {
                            let now = session.breaker_state(s);
                            if now != states[s] {
                                *t += 1;
                                states[s] = now;
                            }
                        }
                    }
                    println!(
                        "work ok: {reads} reads × {file_len} B over {} node(s) \
                         (replicas {}) — worst {:.1} ms of {deadline_ms} ms budget, \
                         crc32c {digest:08x}",
                        addrs.len(),
                        session.replicas(),
                        worst.as_secs_f64() * 1e3,
                    );
                    println!("hedged reads: {}", session.hedged_reads());
                    for (s, st) in states.iter().enumerate() {
                        println!(
                            "node {s} @ {}: breaker {st:?} ({} transition(s) observed)",
                            addrs[s], transitions[s]
                        );
                    }
                    Ok(())
                }
                "stat" => {
                    let file = parse_u64(rest.get(2).ok_or_else(usage)?, "file id")?;
                    for (s, info) in session.stat(file).map_err(net_err)?.iter().enumerate() {
                        println!(
                            "subfile {s} @ {}: {} B, {} views, {} requests, \
                             {} B written, {} B read, {} fragments",
                            addrs[s],
                            info.len,
                            info.views,
                            info.requests,
                            info.bytes_written,
                            info.bytes_read,
                            info.fragments
                        );
                    }
                    Ok(())
                }
                // Fetches every subfile through the session read path
                // (with `--replicas R`, reads fail over to surviving
                // copies) and prints a digest over the concatenation in
                // subfile order — byte-identical subfiles give an
                // identical digest, so scripts can compare runs across
                // faults without knowing the partitioning.
                "fetch" => {
                    let file = parse_u64(rest.get(2).ok_or_else(usage)?, "file id")?;
                    let mut all = Vec::new();
                    for s in 0..session.io_nodes() {
                        all.extend_from_slice(&session.subfile(file, s).map_err(net_err)?);
                    }
                    println!(
                        "file {file}: {} bytes, crc32c {:08x}",
                        all.len(),
                        clusterfile::crc32c(&all)
                    );
                    Ok(())
                }
                "probe" => {
                    for (s, health) in session.probe().iter().enumerate() {
                        match health {
                            parafile_net::NodeHealth::Alive { epoch } => {
                                println!("node {s} @ {}: alive (epoch {epoch})", addrs[s]);
                            }
                            parafile_net::NodeHealth::Dead => {
                                println!("node {s} @ {}: DEAD", addrs[s]);
                            }
                            parafile_net::NodeHealth::Unknown => {
                                println!("node {s} @ {}: unknown", addrs[s]);
                            }
                        }
                    }
                    Ok(())
                }
                "shutdown" => {
                    session.shutdown_all().map_err(net_err)?;
                    println!("{} daemon(s) asked to stop", addrs.len());
                    Ok(())
                }
                _ => Err(usage()),
            }
        }
        "scrub" => {
            let verify = args.iter().any(|a| a == "--verify");
            let without_verify: Vec<String> =
                args[1..].iter().filter(|a| *a != "--verify").cloned().collect();
            let (rest, replicas, _tenant) = split_replicas_flag(&without_verify)?;
            let addrs: Vec<String> =
                rest.first().ok_or_else(usage)?.split(',').map(|s| s.trim().to_string()).collect();
            let file = parse_u64(rest.get(1).ok_or_else(usage)?, "file id")?;
            let mut session =
                parafile_net::Session::connect_replicated(&addrs, replicas).map_err(net_err)?;
            let report = if verify {
                session.scrub_verify(file).map_err(net_err)?
            } else {
                session.scrub(file).map_err(net_err)?
            };
            for (s, verdict) in &report.verdicts {
                println!("subfile {s}: {verdict:?}");
            }
            println!(
                "pf-scrub{}: {} repaired, {} unrepaired, {} unreachable cop(ies), {} lost",
                if verify { " (verify)" } else { "" },
                report.repaired,
                report.failed,
                report.skipped,
                report.lost.len()
            );
            // Exit 5 = the file is not fully R-way redundant (some copy
            // is lost, unreachable, or still pending repair), so scripts
            // can gate on scrub convergence.
            if report.fully_redundant() {
                println!("file {file} fully redundant ({replicas} cop(ies) per subfile)");
                Ok(())
            } else {
                println!("file {file} NOT fully redundant");
                std::process::exit(5);
            }
        }
        _ => Err(usage()),
    }
}
