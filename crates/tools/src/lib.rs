//! Library backing the `pf` command-line tool: JSON descriptions of
//! partitions and the operations the subcommands expose.
//!
//! A partition file looks like:
//!
//! ```json
//! {
//!   "displacement": 2,
//!   "elements": [
//!     [{ "l": 0, "r": 1, "s": 6, "n": 1 }],
//!     [{ "l": 2, "r": 3, "s": 6, "n": 1 }],
//!     [{ "l": 4, "r": 5, "s": 6, "n": 1 }]
//!   ]
//! }
//! ```
//!
//! where each element is a list of (possibly nested) FALLS. Shorthand
//! descriptions for HPF matrix layouts are also accepted:
//!
//! ```json
//! { "matrix": { "rows": 256, "cols": 256, "procs": 4, "layout": "row" } }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use arraydist::matrix::MatrixLayout;
use falls::{Falls, FallsError, NestedFalls, NestedSet};
use parafile::model::{Partition, PartitionPattern};
use serde::{Deserialize, Serialize};

/// JSON form of one (possibly nested) FALLS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FallsSpec {
    /// Left index of the first segment.
    pub l: u64,
    /// Right index of the first segment.
    pub r: u64,
    /// Stride.
    pub s: u64,
    /// Segment count.
    pub n: u64,
    /// Inner families, relative to the block start.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub inner: Vec<FallsSpec>,
}

impl FallsSpec {
    /// Lowers the spec to a [`NestedFalls`].
    pub fn to_nested(&self) -> Result<NestedFalls, FallsError> {
        let falls = Falls::new(self.l, self.r, self.s, self.n)?;
        if self.inner.is_empty() {
            Ok(NestedFalls::leaf(falls))
        } else {
            let inner = self
                .inner
                .iter()
                .map(FallsSpec::to_nested)
                .collect::<Result<Vec<_>, _>>()?;
            NestedFalls::with_inner(falls, inner)
        }
    }

    /// Reverse direction, for emitting JSON from computed structures.
    #[must_use]
    pub fn from_nested(nf: &NestedFalls) -> Self {
        let f = nf.falls();
        Self {
            l: f.l(),
            r: f.r(),
            s: f.stride(),
            n: f.count(),
            inner: nf.inner().iter().map(FallsSpec::from_nested).collect(),
        }
    }
}

/// JSON form of a matrix-layout shorthand.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixSpec {
    /// Matrix rows (in elements).
    pub rows: u64,
    /// Matrix columns (in elements).
    pub cols: u64,
    /// Element size in bytes (default 1).
    #[serde(default = "one")]
    pub elem_size: u64,
    /// Processor count.
    pub procs: u64,
    /// `"row"`, `"col"` or `"block"`.
    pub layout: String,
}

fn one() -> u64 {
    1
}

/// JSON form of a full partition: either explicit elements or a matrix
/// shorthand.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Absolute displacement (default 0).
    #[serde(default)]
    pub displacement: u64,
    /// Explicit elements: one list of FALLS specs per partition element.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub elements: Vec<Vec<FallsSpec>>,
    /// Matrix shorthand (mutually exclusive with `elements`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub matrix: Option<MatrixSpec>,
}

/// Errors surfaced by the tool library.
#[derive(Debug)]
pub enum ToolError {
    /// JSON parse failure.
    Json(serde_json::Error),
    /// Invalid FALLS structure.
    Falls(FallsError),
    /// Invalid partition structure.
    Partition(parafile::Error),
    /// Bad shorthand or argument.
    Spec(String),
    /// I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ToolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ToolError::Json(e) => write!(f, "invalid JSON: {e}"),
            ToolError::Falls(e) => write!(f, "invalid FALLS: {e}"),
            ToolError::Partition(e) => write!(f, "invalid partition: {e}"),
            ToolError::Spec(m) => write!(f, "{m}"),
            ToolError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ToolError {}

impl From<serde_json::Error> for ToolError {
    fn from(e: serde_json::Error) -> Self {
        ToolError::Json(e)
    }
}
impl From<FallsError> for ToolError {
    fn from(e: FallsError) -> Self {
        ToolError::Falls(e)
    }
}
impl From<parafile::Error> for ToolError {
    fn from(e: parafile::Error) -> Self {
        ToolError::Partition(e)
    }
}
impl From<std::io::Error> for ToolError {
    fn from(e: std::io::Error) -> Self {
        ToolError::Io(e)
    }
}

impl PartitionSpec {
    /// Parses a spec from JSON text.
    pub fn parse(json: &str) -> Result<Self, ToolError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Lowers the spec to a [`Partition`].
    pub fn to_partition(&self) -> Result<Partition, ToolError> {
        if let Some(m) = &self.matrix {
            if !self.elements.is_empty() {
                return Err(ToolError::Spec(
                    "specify either `matrix` or `elements`, not both".into(),
                ));
            }
            let layout = match m.layout.as_str() {
                "row" | "rows" | "r" => MatrixLayout::RowBlocks,
                "col" | "cols" | "c" => MatrixLayout::ColumnBlocks,
                "block" | "blocks" | "b" => MatrixLayout::SquareBlocks,
                other => {
                    return Err(ToolError::Spec(format!(
                        "unknown matrix layout {other:?}; use row/col/block"
                    )))
                }
            };
            let pattern = layout
                .distribution(m.rows, m.cols, m.elem_size, m.procs)
                .pattern();
            return Ok(Partition::new(self.displacement, pattern));
        }
        if self.elements.is_empty() {
            return Err(ToolError::Spec("partition has no elements".into()));
        }
        let sets = self
            .elements
            .iter()
            .map(|fams| {
                let nested = fams
                    .iter()
                    .map(FallsSpec::to_nested)
                    .collect::<Result<Vec<_>, _>>()?;
                NestedSet::new(nested)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let pattern = PartitionPattern::new(sets)?;
        Ok(Partition::new(self.displacement, pattern))
    }

    /// A sample spec (the paper's Figure 3), for `pf example`.
    #[must_use]
    pub fn example() -> Self {
        Self {
            displacement: 2,
            elements: (0..3)
                .map(|k| {
                    vec![FallsSpec { l: 2 * k, r: 2 * k + 1, s: 6, n: 1, inner: Vec::new() }]
                })
                .collect(),
            matrix: None,
        }
    }
}

/// Reads a partition from a JSON file path (or stdin when the path is `-`).
pub fn load_partition(path: &str) -> Result<Partition, ToolError> {
    let text = if path == "-" {
        use std::io::Read;
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s)?;
        s
    } else {
        std::fs::read_to_string(path)?
    };
    PartitionSpec::parse(&text)?.to_partition()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_spec_round_trip() {
        let spec = PartitionSpec::example();
        let json = serde_json::to_string(&spec).unwrap();
        let parsed = PartitionSpec::parse(&json).unwrap();
        let p = parsed.to_partition().unwrap();
        assert_eq!(p.displacement(), 2);
        assert_eq!(p.element_count(), 3);
        assert_eq!(p.pattern().size(), 6);
    }

    #[test]
    fn nested_spec_parses() {
        let json = r#"{
            "elements": [
                [{ "l": 0, "r": 3, "s": 8, "n": 2, "inner": [{ "l": 0, "r": 0, "s": 2, "n": 2 }] }],
                [{ "l": 1, "r": 1, "s": 2, "n": 2 },
                 { "l": 4, "r": 7, "s": 16, "n": 1 },
                 { "l": 9, "r": 9, "s": 2, "n": 2 },
                 { "l": 12, "r": 15, "s": 16, "n": 1 }]
            ]
        }"#;
        let p = PartitionSpec::parse(json).unwrap().to_partition().unwrap();
        assert_eq!(p.pattern().size(), 16);
        assert_eq!(p.owner_of(0), Some(0));
        assert_eq!(p.owner_of(1), Some(1));
    }

    #[test]
    fn matrix_shorthand() {
        let json = r#"{ "matrix": { "rows": 8, "cols": 8, "procs": 4, "layout": "col" } }"#;
        let p = PartitionSpec::parse(json).unwrap().to_partition().unwrap();
        assert_eq!(p.element_count(), 4);
        assert_eq!(p.pattern().size(), 64);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(PartitionSpec::parse("{}").unwrap().to_partition().is_err());
        let both = r#"{
            "elements": [[{ "l": 0, "r": 1, "s": 2, "n": 1 }]],
            "matrix": { "rows": 4, "cols": 4, "procs": 2, "layout": "row" }
        }"#;
        assert!(PartitionSpec::parse(both).unwrap().to_partition().is_err());
        let bad_layout = r#"{ "matrix": { "rows": 4, "cols": 4, "procs": 2, "layout": "hex" } }"#;
        assert!(PartitionSpec::parse(bad_layout).unwrap().to_partition().is_err());
        // Non-tiling explicit elements.
        let gap = r#"{ "elements": [[{ "l": 1, "r": 2, "s": 3, "n": 1 }]] }"#;
        assert!(PartitionSpec::parse(gap).unwrap().to_partition().is_err());
    }

    #[test]
    fn falls_spec_round_trips_nested() {
        let nf = NestedFalls::with_inner(
            Falls::new(0, 7, 16, 2).unwrap(),
            vec![NestedFalls::leaf(Falls::new(0, 1, 4, 2).unwrap())],
        )
        .unwrap();
        let spec = FallsSpec::from_nested(&nf);
        assert_eq!(spec.to_nested().unwrap(), nf);
    }
}
