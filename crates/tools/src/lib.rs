//! Library backing the `pf` command-line tool: JSON descriptions of
//! partitions and the operations the subcommands expose.
//!
//! A partition file looks like:
//!
//! ```json
//! {
//!   "displacement": 2,
//!   "elements": [
//!     [{ "l": 0, "r": 1, "s": 6, "n": 1 }],
//!     [{ "l": 2, "r": 3, "s": 6, "n": 1 }],
//!     [{ "l": 4, "r": 5, "s": 6, "n": 1 }]
//!   ]
//! }
//! ```
//!
//! where each element is a list of (possibly nested) FALLS. Shorthand
//! descriptions for HPF matrix layouts are also accepted:
//!
//! ```json
//! { "matrix": { "rows": 256, "cols": 256, "procs": 4, "layout": "row" } }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use arraydist::matrix::MatrixLayout;
use falls::{Falls, FallsError, NestedFalls, NestedSet};
use jsonlite::{obj, Json, ToJson};
use parafile::model::{Partition, PartitionPattern};

/// JSON form of one (possibly nested) FALLS.
#[derive(Debug, Clone)]
pub struct FallsSpec {
    /// Left index of the first segment.
    pub l: u64,
    /// Right index of the first segment.
    pub r: u64,
    /// Stride.
    pub s: u64,
    /// Segment count.
    pub n: u64,
    /// Inner families, relative to the block start.
    pub inner: Vec<FallsSpec>,
}

fn require_u64(value: &Json, key: &str, what: &str) -> Result<u64, ToolError> {
    value
        .get(key)
        .ok_or_else(|| ToolError::Spec(format!("{what} is missing field {key:?}")))?
        .as_u64()
        .ok_or_else(|| {
            ToolError::Spec(format!("field {key:?} of {what} must be an unsigned integer"))
        })
}

fn optional_u64(value: &Json, key: &str, default: u64) -> Result<u64, ToolError> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| ToolError::Spec(format!("field {key:?} must be an unsigned integer"))),
    }
}

impl FallsSpec {
    /// Reads a spec from its JSON object form.
    pub fn from_json(value: &Json) -> Result<Self, ToolError> {
        if value.as_object().is_none() {
            return Err(ToolError::Spec("a FALLS spec must be a JSON object".into()));
        }
        let inner = match value.get("inner") {
            None => Vec::new(),
            Some(arr) => arr
                .as_array()
                .ok_or_else(|| ToolError::Spec("field \"inner\" must be an array".into()))?
                .iter()
                .map(FallsSpec::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(Self {
            l: require_u64(value, "l", "a FALLS spec")?,
            r: require_u64(value, "r", "a FALLS spec")?,
            s: require_u64(value, "s", "a FALLS spec")?,
            n: require_u64(value, "n", "a FALLS spec")?,
            inner,
        })
    }

    /// Emits the spec's JSON object form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("l".to_owned(), self.l.to_json()),
            ("r".to_owned(), self.r.to_json()),
            ("s".to_owned(), self.s.to_json()),
            ("n".to_owned(), self.n.to_json()),
        ];
        if !self.inner.is_empty() {
            fields.push((
                "inner".to_owned(),
                Json::Array(self.inner.iter().map(FallsSpec::to_json).collect()),
            ));
        }
        Json::Object(fields)
    }

    /// Lowers the spec to a [`NestedFalls`].
    pub fn to_nested(&self) -> Result<NestedFalls, FallsError> {
        let falls = Falls::new(self.l, self.r, self.s, self.n)?;
        if self.inner.is_empty() {
            Ok(NestedFalls::leaf(falls))
        } else {
            let inner =
                self.inner.iter().map(FallsSpec::to_nested).collect::<Result<Vec<_>, _>>()?;
            NestedFalls::with_inner(falls, inner)
        }
    }

    /// Reverse direction, for emitting JSON from computed structures.
    #[must_use]
    pub fn from_nested(nf: &NestedFalls) -> Self {
        let f = nf.falls();
        Self {
            l: f.l(),
            r: f.r(),
            s: f.stride(),
            n: f.count(),
            inner: nf.inner().iter().map(FallsSpec::from_nested).collect(),
        }
    }
}

/// JSON form of a matrix-layout shorthand.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// Matrix rows (in elements).
    pub rows: u64,
    /// Matrix columns (in elements).
    pub cols: u64,
    /// Element size in bytes (default 1).
    pub elem_size: u64,
    /// Processor count.
    pub procs: u64,
    /// `"row"`, `"col"` or `"block"`.
    pub layout: String,
}

impl MatrixSpec {
    /// Reads a matrix shorthand from its JSON object form.
    pub fn from_json(value: &Json) -> Result<Self, ToolError> {
        if value.as_object().is_none() {
            return Err(ToolError::Spec("`matrix` must be a JSON object".into()));
        }
        let layout = value
            .get("layout")
            .ok_or_else(|| ToolError::Spec("`matrix` is missing field \"layout\"".into()))?
            .as_str()
            .ok_or_else(|| ToolError::Spec("field \"layout\" must be a string".into()))?
            .to_owned();
        Ok(Self {
            rows: require_u64(value, "rows", "`matrix`")?,
            cols: require_u64(value, "cols", "`matrix`")?,
            elem_size: optional_u64(value, "elem_size", 1)?,
            procs: require_u64(value, "procs", "`matrix`")?,
            layout,
        })
    }

    /// Emits the shorthand's JSON object form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        obj![
            ("rows", self.rows),
            ("cols", self.cols),
            ("elem_size", self.elem_size),
            ("procs", self.procs),
            ("layout", self.layout.as_str())
        ]
    }
}

/// JSON form of a full partition: either explicit elements or a matrix
/// shorthand.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    /// Absolute displacement (default 0).
    pub displacement: u64,
    /// Explicit elements: one list of FALLS specs per partition element.
    pub elements: Vec<Vec<FallsSpec>>,
    /// Matrix shorthand (mutually exclusive with `elements`).
    pub matrix: Option<MatrixSpec>,
}

/// Errors surfaced by the tool library.
#[derive(Debug)]
pub enum ToolError {
    /// JSON parse failure.
    Json(jsonlite::JsonError),
    /// Invalid FALLS structure.
    Falls(FallsError),
    /// Invalid partition structure.
    Partition(parafile::Error),
    /// Bad shorthand or argument.
    Spec(String),
    /// I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ToolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ToolError::Json(e) => write!(f, "invalid JSON: {e}"),
            ToolError::Falls(e) => write!(f, "invalid FALLS: {e}"),
            ToolError::Partition(e) => write!(f, "invalid partition: {e}"),
            ToolError::Spec(m) => write!(f, "{m}"),
            ToolError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ToolError {}

impl From<jsonlite::JsonError> for ToolError {
    fn from(e: jsonlite::JsonError) -> Self {
        ToolError::Json(e)
    }
}
impl From<FallsError> for ToolError {
    fn from(e: FallsError) -> Self {
        ToolError::Falls(e)
    }
}
impl From<parafile::Error> for ToolError {
    fn from(e: parafile::Error) -> Self {
        ToolError::Partition(e)
    }
}
impl From<std::io::Error> for ToolError {
    fn from(e: std::io::Error) -> Self {
        ToolError::Io(e)
    }
}

impl PartitionSpec {
    /// Parses a spec from JSON text.
    pub fn parse(json: &str) -> Result<Self, ToolError> {
        Self::from_json(&Json::parse(json)?)
    }

    /// Reads a spec from an already-parsed JSON value.
    pub fn from_json(value: &Json) -> Result<Self, ToolError> {
        if value.as_object().is_none() {
            return Err(ToolError::Spec("a partition spec must be a JSON object".into()));
        }
        let elements = match value.get("elements") {
            None => Vec::new(),
            Some(arr) => arr
                .as_array()
                .ok_or_else(|| ToolError::Spec("field \"elements\" must be an array".into()))?
                .iter()
                .map(|fams| {
                    fams.as_array()
                        .ok_or_else(|| {
                            ToolError::Spec("each element must be an array of FALLS specs".into())
                        })?
                        .iter()
                        .map(FallsSpec::from_json)
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        let matrix = match value.get("matrix") {
            None => None,
            Some(m) => Some(MatrixSpec::from_json(m)?),
        };
        Ok(Self { displacement: optional_u64(value, "displacement", 0)?, elements, matrix })
    }

    /// Emits the spec's JSON object form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if self.displacement != 0 {
            fields.push(("displacement".to_owned(), self.displacement.to_json()));
        }
        if !self.elements.is_empty() {
            fields.push((
                "elements".to_owned(),
                Json::Array(
                    self.elements
                        .iter()
                        .map(|fams| Json::Array(fams.iter().map(FallsSpec::to_json).collect()))
                        .collect(),
                ),
            ));
        }
        if let Some(m) = &self.matrix {
            fields.push(("matrix".to_owned(), m.to_json()));
        }
        Json::Object(fields)
    }

    /// Lowers the spec to a [`Partition`].
    pub fn to_partition(&self) -> Result<Partition, ToolError> {
        if let Some(m) = &self.matrix {
            if !self.elements.is_empty() {
                return Err(ToolError::Spec(
                    "specify either `matrix` or `elements`, not both".into(),
                ));
            }
            let layout = match m.layout.as_str() {
                "row" | "rows" | "r" => MatrixLayout::RowBlocks,
                "col" | "cols" | "c" => MatrixLayout::ColumnBlocks,
                "block" | "blocks" | "b" => MatrixLayout::SquareBlocks,
                other => {
                    return Err(ToolError::Spec(format!(
                        "unknown matrix layout {other:?}; use row/col/block"
                    )))
                }
            };
            let pattern = layout.distribution(m.rows, m.cols, m.elem_size, m.procs).pattern();
            return Ok(Partition::new(self.displacement, pattern));
        }
        if self.elements.is_empty() {
            return Err(ToolError::Spec("partition has no elements".into()));
        }
        let sets = self
            .elements
            .iter()
            .map(|fams| {
                let nested =
                    fams.iter().map(FallsSpec::to_nested).collect::<Result<Vec<_>, _>>()?;
                NestedSet::new(nested)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let pattern = PartitionPattern::new(sets)?;
        Ok(Partition::new(self.displacement, pattern))
    }

    /// A sample spec (the paper's Figure 3), for `pf example`.
    #[must_use]
    pub fn example() -> Self {
        Self {
            displacement: 2,
            elements: (0..3)
                .map(|k| vec![FallsSpec { l: 2 * k, r: 2 * k + 1, s: 6, n: 1, inner: Vec::new() }])
                .collect(),
            matrix: None,
        }
    }
}

/// Reads a partition from a JSON file path (or stdin when the path is `-`).
pub fn load_partition(path: &str) -> Result<Partition, ToolError> {
    PartitionSpec::parse(&read_input(path)?)?.to_partition()
}

/// Reads a file's text (or stdin when the path is `-`).
pub fn read_input(path: &str) -> Result<String, ToolError> {
    if path == "-" {
        use std::io::Read;
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s)?;
        Ok(s)
    } else {
        Ok(std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_spec_round_trip() {
        let spec = PartitionSpec::example();
        let json = spec.to_json().render();
        let parsed = PartitionSpec::parse(&json).unwrap();
        let p = parsed.to_partition().unwrap();
        assert_eq!(p.displacement(), 2);
        assert_eq!(p.element_count(), 3);
        assert_eq!(p.pattern().size(), 6);
    }

    #[test]
    fn nested_spec_parses() {
        let json = r#"{
            "elements": [
                [{ "l": 0, "r": 3, "s": 8, "n": 2, "inner": [{ "l": 0, "r": 0, "s": 2, "n": 2 }] }],
                [{ "l": 1, "r": 1, "s": 2, "n": 2 },
                 { "l": 4, "r": 7, "s": 16, "n": 1 },
                 { "l": 9, "r": 9, "s": 2, "n": 2 },
                 { "l": 12, "r": 15, "s": 16, "n": 1 }]
            ]
        }"#;
        let p = PartitionSpec::parse(json).unwrap().to_partition().unwrap();
        assert_eq!(p.pattern().size(), 16);
        assert_eq!(p.owner_of(0), Some(0));
        assert_eq!(p.owner_of(1), Some(1));
    }

    #[test]
    fn matrix_shorthand() {
        let json = r#"{ "matrix": { "rows": 8, "cols": 8, "procs": 4, "layout": "col" } }"#;
        let p = PartitionSpec::parse(json).unwrap().to_partition().unwrap();
        assert_eq!(p.element_count(), 4);
        assert_eq!(p.pattern().size(), 64);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(PartitionSpec::parse("{}").unwrap().to_partition().is_err());
        let both = r#"{
            "elements": [[{ "l": 0, "r": 1, "s": 2, "n": 1 }]],
            "matrix": { "rows": 4, "cols": 4, "procs": 2, "layout": "row" }
        }"#;
        assert!(PartitionSpec::parse(both).unwrap().to_partition().is_err());
        let bad_layout = r#"{ "matrix": { "rows": 4, "cols": 4, "procs": 2, "layout": "hex" } }"#;
        assert!(PartitionSpec::parse(bad_layout).unwrap().to_partition().is_err());
        // Non-tiling explicit elements.
        let gap = r#"{ "elements": [[{ "l": 1, "r": 2, "s": 3, "n": 1 }]] }"#;
        assert!(PartitionSpec::parse(gap).unwrap().to_partition().is_err());
        // Structural JSON problems surface as spec errors, not panics.
        assert!(PartitionSpec::parse(r#"{ "elements": [[{ "l": 0 }]] }"#).is_err());
        assert!(PartitionSpec::parse(r#"{ "elements": [[{ "l": -3, "r": 1, "s": 2, "n": 1 }]] }"#)
            .is_err());
        assert!(PartitionSpec::parse("[1, 2]").is_err());
    }

    #[test]
    fn falls_spec_round_trips_nested() {
        let nf = NestedFalls::with_inner(
            Falls::new(0, 7, 16, 2).unwrap(),
            vec![NestedFalls::leaf(Falls::new(0, 1, 4, 2).unwrap())],
        )
        .unwrap();
        let spec = FallsSpec::from_nested(&nf);
        assert_eq!(spec.to_nested().unwrap(), nf);
        let round = FallsSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(round.to_nested().unwrap(), nf);
    }
}
