//! End-to-end checks of the `parafile-lint` binary: exit codes, the
//! `--json` report schema, and the `--source` pass over real files.
//!
//! The JSON schema asserted here is the machine-readable contract CI and
//! downstream tooling consume: a top-level array of
//! `{target, report: {errors, warnings, diagnostics: [{code, severity,
//! span, message}]}}` — the same shape for pattern audits and source
//! lints.

use jsonlite::Json;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_parafile-lint"))
        .args(args)
        .output()
        .expect("run parafile-lint")
}

/// A scratch directory removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("pf-lint-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        Self(dir)
    }

    fn write(&self, rel: &str, content: &str) -> String {
        let path = self.0.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create parent dirs");
        }
        std::fs::write(&path, content).expect("write temp file");
        path.to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Asserts one `{target, report}` object against the schema and returns
/// the diagnostic codes it carries.
fn check_target_schema(target: &Json) -> Vec<String> {
    let report = target.get("report").expect("report field");
    assert!(target.get("target").and_then(Json::as_str).is_some(), "target is a string");
    let errors = report.get("errors").and_then(Json::as_u64).expect("errors count");
    let warnings = report.get("warnings").and_then(Json::as_u64).expect("warnings count");
    let diags = report.get("diagnostics").and_then(Json::as_array).expect("diagnostics array");
    let mut seen_errors = 0;
    let mut seen_warnings = 0;
    let mut codes = Vec::new();
    for d in diags {
        let code = d.get("code").and_then(Json::as_str).expect("code string");
        assert!(
            code.starts_with("PA") && code.len() == 5,
            "codes are stable PAxxx identifiers, got {code:?}"
        );
        match d.get("severity").and_then(Json::as_str).expect("severity string") {
            "error" => seen_errors += 1,
            "warning" => seen_warnings += 1,
            other => panic!("unknown severity {other:?}"),
        }
        assert!(d.get("span").and_then(Json::as_str).is_some(), "span is a string");
        assert!(d.get("message").and_then(Json::as_str).is_some(), "message is a string");
        codes.push(code.to_owned());
    }
    assert_eq!(errors, seen_errors, "errors field counts error diagnostics");
    assert_eq!(warnings, seen_warnings, "warnings field counts warning diagnostics");
    codes
}

const BROKEN_PATTERN: &str = r#"{
  "elements": [
    [ { "l": 0, "r": 1, "s": 6, "n": 1 } ],
    [ { "l": 4, "r": 5, "s": 6, "n": 1 } ]
  ]
}"#;

#[test]
fn json_report_schema_is_stable_for_pattern_audits() {
    let dir = TempDir::new("pattern");
    let part = dir.write("broken.json", BROKEN_PATTERN);
    let out = lint(&["--json", &part]);
    assert_eq!(out.status.code(), Some(1), "errors exit 1");
    let json = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON output");
    let targets = json.as_array().expect("top-level array");
    assert_eq!(targets.len(), 1);
    let codes = check_target_schema(&targets[0]);
    assert!(codes.iter().any(|c| c == "PA020"), "the gap fires PA020: {codes:?}");
}

#[test]
fn source_mode_reports_hot_path_findings_in_the_same_schema() {
    let dir = TempDir::new("source");
    // The path suffix makes the file a configured hot path.
    let hot = dir
        .write("net/src/server.rs", "pub fn serve(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n");
    let out = lint(&["--json", "--source", &hot]);
    assert_eq!(out.status.code(), Some(1), "hot-path unwrap exits 1");
    let json = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON output");
    let targets = json.as_array().expect("top-level array");
    assert_eq!(targets.len(), 1);
    let codes = check_target_schema(&targets[0]);
    assert!(codes.iter().any(|c| c == "PA040"), "unwrap fires PA040: {codes:?}");
}

#[test]
fn source_mode_passes_clean_files_and_non_hot_paths() {
    let dir = TempDir::new("clean");
    // Same content, but not a configured hot path: unwrap is allowed.
    let cold = dir.write(
        "helpers/src/misc.rs",
        "pub fn helper(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let out = lint(&["--source", &cold]);
    assert_eq!(out.status.code(), Some(0), "non-hot paths are exempt");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OK"), "clean targets print OK: {stdout}");
}

#[test]
fn source_mode_runs_clean_over_the_repo_hot_paths() {
    // The seed tree itself must satisfy the source lints: this is the
    // same invocation CI runs.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("crates dir").to_path_buf();
    let hot_paths = [
        "net/src/server.rs",
        "net/src/session.rs",
        "net/src/client.rs",
        "net/src/proto.rs",
        "clusterfile/src/journal.rs",
    ];
    let args: Vec<String> = std::iter::once("--source".to_owned())
        .chain(hot_paths.iter().map(|p| root.join(p).to_string_lossy().into_owned()))
        .collect();
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    let out = lint(&arg_refs);
    assert_eq!(
        out.status.code(),
        Some(0),
        "repo hot paths lint clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn usage_errors_exit_2() {
    let out = lint(&["--source"]);
    assert_eq!(out.status.code(), Some(2), "--source with no files is a usage error");
    let out = lint(&["--bogus-flag"]);
    assert_eq!(out.status.code(), Some(2));
}
