//! End-to-end tests of the `pf` binary.

use std::process::{Command, Stdio};

fn pf(args: &[&str], stdin: Option<&str>) -> (String, String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pf"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    }
    let mut child = cmd.spawn().expect("spawn pf");
    if let Some(input) = stdin {
        use std::io::Write;
        child.stdin.as_mut().unwrap().write_all(input.as_bytes()).unwrap();
    }
    let out = child.wait_with_output().expect("pf runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn example_render_map_pipeline() {
    let (example, _, ok) = pf(&["example"], None);
    assert!(ok);
    assert!(example.contains("\"displacement\": 2"));

    let (render, _, ok) = pf(&["render", "-"], Some(&example));
    assert!(ok, "render failed: {render}");
    assert!(render.contains("element 0"));
    assert!(render.contains("pattern size 6"));

    let (map, _, ok) = pf(&["map", "-", "1", "10"], Some(&example));
    assert!(ok);
    assert!(map.contains("MAP_S1(10) = 2"), "got: {map}");

    let (unmap, _, ok) = pf(&["unmap", "-", "1", "2"], Some(&example));
    assert!(ok);
    assert!(unmap.trim().ends_with("= 10"), "got: {unmap}");

    let (owner, _, ok) = pf(&["owner", "-", "10"], Some(&example));
    assert!(ok);
    assert!(owner.contains("element 1"), "got: {owner}");
}

#[test]
fn map_reports_rounding_for_gaps() {
    let (example, _, _) = pf(&["example"], None);
    let (out, _, ok) = pf(&["map", "-", "0", "5"], Some(&example));
    assert!(ok);
    assert!(out.contains("does not map"), "got: {out}");
    assert!(out.contains("next = 2"), "got: {out}");
    assert!(out.contains("prev = 1"), "got: {out}");
}

#[test]
fn plan_between_matrix_shorthands() {
    let rows = r#"{ "matrix": { "rows": 8, "cols": 8, "procs": 4, "layout": "row" } }"#;
    let dir = std::env::temp_dir();
    let pa = dir.join(format!("pf_cli_rows_{}.json", std::process::id()));
    let pb = dir.join(format!("pf_cli_cols_{}.json", std::process::id()));
    std::fs::write(&pa, rows).unwrap();
    std::fs::write(&pb, r#"{ "matrix": { "rows": 8, "cols": 8, "procs": 4, "layout": "col" } }"#)
        .unwrap();
    let (out, err, ok) = pf(
        &[&"plan".to_string(), &pa.display().to_string(), &pb.display().to_string()]
            .map(|s| s.as_str()),
        None,
    );
    assert!(ok, "plan failed: {err}");
    assert!(out.contains("64 bytes per period"), "got: {out}");
    assert!(out.contains("matching"), "got: {out}");
    std::fs::remove_file(&pa).ok();
    std::fs::remove_file(&pb).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let (_, err, ok) = pf(&["frobnicate"], None);
    assert!(!ok);
    assert!(err.contains("usage"));
    let (_, err, ok) = pf(
        &["map", "-", "9", "1"],
        Some(r#"{ "matrix": { "rows": 4, "cols": 4, "procs": 2, "layout": "row" } }"#),
    );
    assert!(!ok);
    assert!(err.contains("out of range"), "got: {err}");
}
