//! Layout tuning: use the matching-degree metric (the paper's §9 future
//! work) to pick the best physical layout for an observed access pattern,
//! then relayout the file on the fly (Panda-style, §3) and measure the
//! write-time improvement.
//!
//! Run with: `cargo run -p pf-examples --release --example layout_tuning`

use arraydist::matrix::MatrixLayout;
use clusterfile::{relayout, Clusterfile, ClusterfileConfig, WritePolicy};
use parafile::matching::MatchingDegree;
use parafile::Mapper;

fn view_buffers(logical: &parafile::Partition, file_len: u64) -> Vec<Vec<u8>> {
    (0..logical.element_count())
        .map(|c| {
            let m = Mapper::new(logical, c);
            (0..logical.element_len(c, file_len).unwrap())
                .map(|y| (m.unmap(y) % 251) as u8)
                .collect()
        })
        .collect()
}

fn measure_write(fs: &mut Clusterfile, file: usize, logical: &parafile::Partition) -> u64 {
    let n2 = fs.file_len(file);
    for c in 0..logical.element_count() {
        fs.set_view(c, file, logical, c);
    }
    let ops: Vec<(usize, u64, u64, Vec<u8>)> = view_buffers(logical, n2)
        .into_iter()
        .enumerate()
        .map(|(c, d)| (c, 0, d.len() as u64 - 1, d))
        .collect();
    let t = fs.write_group(file, &ops);
    t.iter().map(|w| w.t_w_sim_ns).max().unwrap()
}

fn main() {
    let n = 512u64;
    // The application accesses the file through row-block views.
    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);

    // The file starts in the worst possible layout for that pattern.
    let mut fs = Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::WriteThrough));
    let file = fs.create_file(MatrixLayout::ColumnBlocks.partition(n, n, 1, 4), n * n);
    fs.fill_file(file, |x| (x % 251) as u8);

    println!("access pattern: row-block views over 4 compute nodes\n");

    // Score every candidate physical layout against the access pattern.
    // The cost-predictive metric is the mean copy-run length (see the
    // matching_sweep ablation): longer runs = fewer, larger transfers.
    println!("{:>14} {:>10} {:>12} {:>10}", "candidate", "degree", "mean run B", "runs");
    let mut best: Option<(MatrixLayout, f64)> = None;
    for candidate in MatrixLayout::all() {
        let phys = candidate.partition(n, n, 1, 4);
        let m = MatchingDegree::compute(&logical, &phys).unwrap();
        println!(
            "{:>14} {:>10.3} {:>12.1} {:>10}",
            format!("{candidate:?}"),
            m.degree,
            m.mean_run_len,
            m.runs_per_period
        );
        if best.is_none() || m.mean_run_len > best.unwrap().1 {
            best = Some((candidate, m.mean_run_len));
        }
    }
    let (best_layout, best_run_len) = best.unwrap();
    println!("\nbest candidate: {best_layout:?} (mean run {best_run_len:.0} B)");

    // Measure the write cost in the current (mismatched) layout…
    let before = measure_write(&mut fs, file, &logical);
    println!("write completion before relayout: {:.1} µs", before as f64 / 1e3);

    // …relayout on the fly…
    let report = relayout(&mut fs, file, best_layout.partition(n, n, 1, 4));
    println!(
        "relayout moved {} bytes in {} runs (planned in {:.1?}, moved in {:.1?})",
        report.bytes_moved, report.runs, report.plan_time, report.move_time
    );

    // …and measure again: the perfect match needs no gather and one message.
    let after = measure_write(&mut fs, file, &logical);
    println!("write completion after relayout:  {:.1} µs", after as f64 / 1e3);
    println!("speedup: {:.2}×", before as f64 / after as f64);
    assert!(after < before, "the tuned layout must be faster");

    // Contents survived both the relayout and the rewrites.
    let contents = fs.file_contents(file);
    for (x, &b) in contents.iter().enumerate() {
        assert_eq!(b, (x as u64 % 251) as u8, "byte {x}");
    }
    println!("file contents verified after tuning.");
}
