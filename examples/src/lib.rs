//! Placeholder library target; the runnable content lives in the example
//! binaries (`cargo run -p pf-examples --example <name>`).
