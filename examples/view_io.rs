//! Non-contiguous I/O through MPI-style datatype views: build a derived
//! datatype (every other 8-byte column pair of a row), lower it to nested
//! FALLS, set it as a Clusterfile view, and do contiguous reads/writes on
//! the view while the file system scatters under the hood (§3: "MPI data
//! types can be built on top of them").
//!
//! Run with: `cargo run -p pf-examples --example view_io`

use arraydist::datatype::Datatype;
use arraydist::matrix::MatrixLayout;
use clusterfile::{Clusterfile, ClusterfileConfig, WritePolicy};
use parafile::model::{Partition, PartitionPattern};

fn main() {
    // A vector datatype: 4 blocks of 8 bytes, stride 16 — half the bytes of
    // a 64-byte row, in 8-byte pieces.
    let dtype =
        Datatype::Vector { count: 4, blocklen: 8, stride: 16, child: Box::new(Datatype::byte()) };
    println!(
        "datatype: vector(count=4, blocklen=8, stride=16) — size {} of extent {}",
        dtype.size(),
        dtype.extent()
    );
    let (selected, complement) = dtype.as_view_sets().unwrap();
    println!("lowered to nested FALLS: {selected}");

    // The datatype tiles the file: element 0 = the datatype's bytes,
    // element 1 = the holes. That pair forms a logical partition.
    let logical = Partition::new(
        0,
        PartitionPattern::new(vec![selected, complement.expect("vector has holes")]).unwrap(),
    );

    // The file is physically striped over 4 I/O nodes as row blocks of a
    // 64×64 matrix.
    let mut fs = Clusterfile::new(ClusterfileConfig {
        compute_nodes: 2,
        io_nodes: 4,
        hardware: clustersim::ClusterConfig::paper_testbed(6),
        write_policy: WritePolicy::BufferCache,
        stagger_writes: false,
    });
    let physical = MatrixLayout::RowBlocks.partition(64, 64, 1, 4);
    let file = fs.create_file(physical, 64 * 64);

    // Compute node 0 sees the datatype bytes, node 1 the holes.
    fs.set_view(0, file, &logical, 0);
    fs.set_view(1, file, &logical, 1);

    // Writing the *view* contiguously writes the file non-contiguously.
    let total0 = logical.element_len(0, 64 * 64).unwrap();
    let data: Vec<u8> = (0..total0).map(|y| (y % 199) as u8).collect();
    let w = fs.write(0, file, 0, total0 - 1, &data);
    println!(
        "view write: {} bytes in {} messages, t_w = {:.1} µs simulated",
        w.bytes_sent,
        w.messages,
        w.t_w_sim_ns as f64 / 1e3
    );

    // Read back through the same view: contiguous once more.
    let back = fs.read(0, file, 0, total0 - 1);
    assert_eq!(back, data, "view read returns the view write");

    // The holes stayed untouched.
    let total1 = logical.element_len(1, 64 * 64).unwrap();
    let holes = fs.read(1, file, 0, total1 - 1);
    assert!(holes.iter().all(|&b| b == 0), "the complement view is still zeroed");

    // And the file itself interleaves the two views 8 bytes at a time.
    let contents = fs.file_contents(file);
    println!("file bytes 0..24: {:?}", &contents[..24]);
    assert_eq!(contents[0], 0);
    assert_eq!(contents[8], 0); // hole
    assert_eq!(contents[16], 8); // second datatype block
    println!("ok: non-contiguous file I/O through a contiguous datatype view.");
}
