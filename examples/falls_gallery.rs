//! Reproduces the paper's Figures 1–4 as checked ASCII diagrams: the FALLS
//! and nested-FALLS examples, the partitioned file of Figure 3, and the
//! intersection + projections of Figure 4.
//!
//! Run with: `cargo run -p pf-examples --example falls_gallery`

use falls::{render_falls, render_nested_set, Falls, NestedFalls, NestedSet};
use parafile::model::{Partition, PartitionPattern};
use parafile::redist::{cut_falls, intersect_falls, intersect_sets, Projection};

fn main() {
    // Figure 1: FALLS (3,5,6,5) on a 32-byte file.
    let fig1 = Falls::new(3, 5, 6, 5).unwrap();
    println!("Figure 1 — FALLS {fig1}:");
    println!("{}\n", render_falls(&fig1, 32));
    assert_eq!(fig1.size(), 15);

    // CUT-FALLS example: cut Figure 1's family between 4 and 28.
    let cut = cut_falls(&fig1, 4, 28);
    println!(
        "CUT-FALLS((3,5,6,5), 4, 28) = {}\n",
        cut.iter().map(Falls::to_string).collect::<Vec<_>>().join(", ")
    );
    assert_eq!(cut.len(), 3);

    // Figure 2: nested FALLS (0,3,8,2,{(0,0,2,2)}).
    let fig2 = NestedFalls::with_inner(
        Falls::new(0, 3, 8, 2).unwrap(),
        vec![NestedFalls::leaf(Falls::new(0, 0, 2, 2).unwrap())],
    )
    .unwrap();
    let fig2_set = NestedSet::singleton(fig2);
    println!("Figure 2 — nested FALLS {fig2_set} (size {}):", fig2_set.size());
    println!("{}\n", render_nested_set(std::slice::from_ref(&fig2_set), 16));
    assert_eq!(fig2_set.size(), 4);

    // Figure 3: a file partitioned into three subfiles, displacement 2.
    let sets: Vec<NestedSet> = [(0u64, 1u64), (2, 3), (4, 5)]
        .iter()
        .map(|&(l, r)| NestedSet::singleton(NestedFalls::leaf(Falls::new(l, r, 6, 1).unwrap())))
        .collect();
    println!("Figure 3 — partitioning pattern (size 6, displacement 2):");
    println!("{}\n", render_nested_set(&sets, 6));
    let pattern = PartitionPattern::new(sets).unwrap();
    let partition = Partition::new(2, pattern);
    let m1 = parafile::Mapper::new(&partition, 1);
    println!("MAP_S1(10) = {:?}, MAP_S1⁻¹(2) = {}\n", m1.map(10), m1.unmap(2));
    assert_eq!(m1.map(10), Some(2));

    // Figure 4: INTERSECT-FALLS and the nested intersection + projections.
    let f1 = Falls::new(0, 7, 16, 2).unwrap();
    let f2 = Falls::new(0, 3, 8, 4).unwrap();
    let inter = intersect_falls(&f1, &f2);
    println!(
        "Figure 4 — INTERSECT-FALLS({f1}, {f2}) = {}",
        inter.iter().map(Falls::to_string).collect::<Vec<_>>().join(", ")
    );
    assert_eq!(inter, vec![Falls::new(0, 3, 16, 2).unwrap()]);

    let v = NestedSet::singleton(
        NestedFalls::with_inner(
            Falls::new(0, 7, 16, 2).unwrap(),
            vec![NestedFalls::leaf(Falls::new(0, 1, 4, 2).unwrap())],
        )
        .unwrap(),
    );
    let s = NestedSet::singleton(
        NestedFalls::with_inner(
            Falls::new(0, 3, 8, 4).unwrap(),
            vec![NestedFalls::leaf(Falls::new(0, 0, 2, 2).unwrap())],
        )
        .unwrap(),
    );
    println!("V = {v}\nS = {s}");
    println!("{}", render_nested_set(&[v.clone(), s.clone()], 32));
    let i = intersect_sets(&v, 32, &s, 32);
    println!("V ∩ S = {i} → bytes {:?}", i.absolute_offsets());
    assert_eq!(i.absolute_offsets(), vec![0, 16]);

    // Projections via full partitions (complement elements fill the rest).
    let (pv, ps) = (fig4_partition(&v), fig4_partition(&s));
    let inter = parafile::redist::intersect_elements(&pv, 0, &ps, 0).unwrap();
    let proj_v = Projection::compute(&inter, &pv, 0);
    let proj_s = Projection::compute(&inter, &ps, 0);
    println!(
        "PROJ_V(V∩S) positions {:?}, PROJ_S(V∩S) positions {:?}",
        proj_v.set.absolute_offsets(),
        proj_s.set.absolute_offsets()
    );
    assert_eq!(proj_v.set.absolute_offsets(), vec![0, 4]);
    assert_eq!(proj_s.set.absolute_offsets(), vec![0, 4]);
    println!("\nall figures verified.");
}

/// Wraps one element set into a full two-element partition of a 32-byte
/// pattern (the complement becomes element 1).
fn fig4_partition(set: &NestedSet) -> Partition {
    let complement = set.complement(32);
    Partition::new(0, PartitionPattern::new(vec![set.clone(), complement]).unwrap())
}
