//! Redistributing a 2-D matrix between HPF-style layouts — the workload the
//! paper's introduction motivates: arrays stored on parallel disks in one
//! distribution and consumed by processors in another.
//!
//! Run with: `cargo run -p pf-examples --release --example matrix_redistribution`

use arraydist::dist::{ArrayDistribution, DimDist};
use arraydist::grid::ProcGrid;
use arraydist::matrix::MatrixLayout;
use parafile::matching::MatchingDegree;
use parafile::plan::RedistributionPlan;
use parafile::redist::redistribute_bytewise;
use parafile::Mapper;
use std::time::Instant;

fn main() {
    let n = 512u64;
    let file_len = n * n;

    // Source: the matrix lives on 4 disks as square blocks.
    let src = MatrixLayout::SquareBlocks.partition(n, n, 1, 4);
    // Destination: 8 processors want block-cyclic rows × cyclic columns.
    let dst = ArrayDistribution::new(
        vec![n, n],
        1,
        vec![DimDist::BlockCyclic(16), DimDist::Cyclic],
        ProcGrid::new(vec![4, 2]),
    )
    .partition(0);

    println!("redistributing a {n}×{n} byte matrix");
    println!("  src: square blocks over 4 disks");
    println!("  dst: CYCLIC(16) rows × CYCLIC columns over a 4×2 grid");

    // Fill source buffers with a recognizable pattern.
    let src_bufs: Vec<Vec<u8>> = (0..src.element_count())
        .map(|e| {
            let m = Mapper::new(&src, e);
            (0..src.element_len(e, file_len).unwrap()).map(|y| (m.unmap(y) % 251) as u8).collect()
        })
        .collect();
    let mut dst_bufs: Vec<Vec<u8>> = (0..dst.element_count())
        .map(|e| vec![0u8; dst.element_len(e, file_len).unwrap() as usize])
        .collect();

    // Plan (the paper's view-set analogue) …
    let t0 = Instant::now();
    let plan = RedistributionPlan::build(&src, &dst).unwrap();
    let plan_time = t0.elapsed();
    let degree = MatchingDegree::from_plan(&plan, &dst);
    println!(
        "  plan: {} runs/period, mean run {:.1} B, matching degree {:.3} ({:.1?} to build)",
        plan.runs_per_period(),
        degree.mean_run_len,
        degree.degree,
        plan_time
    );

    // … then move the data with segment copies.
    let t1 = Instant::now();
    let moved = plan.apply(&src_bufs, &mut dst_bufs, file_len);
    let seg_time = t1.elapsed();
    println!("  segment redistribution: {moved} bytes in {seg_time:.1?}");

    // Verify every destination byte.
    for (e, buf) in dst_bufs.iter().enumerate() {
        let m = Mapper::new(&dst, e);
        for (y, &v) in buf.iter().enumerate() {
            assert_eq!(v, (m.unmap(y as u64) % 251) as u8, "element {e} offset {y}");
        }
    }
    println!("  verified: every byte landed at its MAP⁻¹ position");

    // The byte-by-byte strawman of §3, for contrast.
    let mut dst_bufs2: Vec<Vec<u8>> = dst_bufs.iter().map(|b| vec![0u8; b.len()]).collect();
    let t2 = Instant::now();
    redistribute_bytewise(&src, &dst, &src_bufs, &mut dst_bufs2, file_len);
    let byte_time = t2.elapsed();
    println!(
        "  byte-by-byte baseline: {byte_time:.1?} ({:.1}× slower)",
        byte_time.as_secs_f64() / seg_time.as_secs_f64()
    );
    assert_eq!(dst_bufs, dst_bufs2, "both strategies agree on the result");
}
