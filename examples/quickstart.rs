//! Quickstart: the parallel file model, mapping functions, and
//! redistribution in ~60 lines.
//!
//! Run with: `cargo run -p pf-examples --example quickstart`

use falls::{Falls, NestedFalls, NestedSet};
use parafile::mapping::{map_between, Mapper};
use parafile::model::{Partition, PartitionPattern};
use parafile::plan::RedistributionPlan;

fn stripe_partition(count: u64, width: u64) -> Partition {
    let pattern = PartitionPattern::new(
        (0..count)
            .map(|k| {
                NestedSet::singleton(NestedFalls::leaf(
                    Falls::new(k * width, (k + 1) * width - 1, count * width, 1).unwrap(),
                ))
            })
            .collect(),
    )
    .unwrap();
    Partition::new(0, pattern)
}

fn cyclic_partition(count: u64) -> Partition {
    let pattern = PartitionPattern::new(
        (0..count)
            .map(|k| NestedSet::singleton(NestedFalls::leaf(Falls::new(k, k, count, 1).unwrap())))
            .collect(),
    )
    .unwrap();
    Partition::new(0, pattern)
}

fn main() {
    // A file striped over 4 disks in 8-byte units.
    let physical = stripe_partition(4, 8);
    println!("physical partition:\n{physical}");

    // MAP / MAP⁻¹: where does file byte 21 live?
    let owner = physical.owner_of(21).unwrap();
    let mapper = Mapper::new(&physical, owner);
    println!(
        "file byte 21 → subfile {owner}, offset {} (and back: {})",
        mapper.map(21).unwrap(),
        mapper.unmap(mapper.map(21).unwrap()),
    );

    // A byte-cyclic view of the same file, and a cross-partition mapping.
    let logical = cyclic_partition(4);
    let view1 = Mapper::new(&logical, 1);
    println!(
        "view-1 offset 5 → file byte {} → subfile {:?} offset {:?}",
        view1.unmap(5),
        physical.owner_of(view1.unmap(5)),
        map_between(&view1, &Mapper::new(&physical, physical.owner_of(view1.unmap(5)).unwrap()), 5),
    );

    // Redistribute a 64-byte file from the striped layout to the cyclic one.
    let file_len = 64u64;
    let plan = RedistributionPlan::build(&physical, &logical).unwrap();
    println!(
        "redistribution plan: {} byte(s) per period of {}, {} copy runs",
        plan.bytes_per_period(),
        plan.period,
        plan.runs_per_period()
    );
    let src: Vec<Vec<u8>> = (0..4)
        .map(|e| {
            let m = Mapper::new(&physical, e);
            (0..physical.element_len(e, file_len).unwrap()).map(|y| m.unmap(y) as u8).collect()
        })
        .collect();
    let mut dst: Vec<Vec<u8>> =
        (0..4).map(|e| vec![0u8; logical.element_len(e, file_len).unwrap() as usize]).collect();
    let moved = plan.apply(&src, &mut dst, file_len);
    println!("moved {moved} bytes; cyclic element 0 now holds {:?}", &dst[0][..8]);
    assert_eq!(&dst[0][..4], &[0, 4, 8, 12], "cyclic element 0 holds bytes 0,4,8,…");
    println!("ok.");
}
