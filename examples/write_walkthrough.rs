//! The paper's Figure 5 walk-through: what happens inside Clusterfile when a
//! compute node writes through a view that doesn't match the physical
//! layout — view set, extremity mapping, gather, send, scatter — with the
//! simulator's event trace.
//!
//! Run with: `cargo run -p pf-examples --example write_walkthrough`

use arraydist::matrix::MatrixLayout;
use clusterfile::{Clusterfile, ClusterfileConfig, WritePolicy};
use parafile::Mapper;

fn main() {
    let n = 16u64;
    let mut fs = Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::WriteThrough));
    fs.cluster_mut().enable_trace();

    // Physical: column blocks over 4 I/O nodes; logical: row blocks over 4
    // compute nodes — the paper's worst-matching pair.
    let physical = MatrixLayout::ColumnBlocks.partition(n, n, 1, 4);
    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
    let file = fs.create_file(physical, n * n);

    println!("== view set (compute node 0) ==");
    let t = fs.set_view(0, file, &logical, 0);
    println!(
        "intersected {} subfiles in {:?} (t_i); projections stored locally and shipped",
        t.intersecting_subfiles, t.t_i
    );

    println!("\n== write: 64-byte view interval [0, 63] ==");
    let m = Mapper::new(&logical, 0);
    let data: Vec<u8> = (0..64).map(|y| (m.unmap(y) % 251) as u8).collect();
    let w = fs.write(0, file, 0, 63, &data);
    println!(
        "t_m = {:?} (extremity mapping), t_g = {:?} (gather), {} messages, {} payload bytes",
        w.t_m, w.t_g, w.messages, w.bytes_sent
    );
    println!("t_w = {:.1} µs simulated (request → last ack)", w.t_w_sim_ns as f64 / 1e3);

    println!("\n== simulator event trace ==");
    for entry in fs.cluster().trace().unwrap() {
        println!("{}", entry.render());
    }

    println!("\n== subfile contents after the write ==");
    for s in 0..4 {
        let io = fs.io_timings()[s];
        println!(
            "subfile {s}: first bytes {:?} … ({} fragments scattered, {:.1} µs simulated)",
            &fs.subfile(file, s)[..8],
            io.fragments,
            io.t_s_sim_ns as f64 / 1e3
        );
    }

    // Verify the write landed correctly.
    let contents = fs.file_contents(file);
    for y in 0..64u64 {
        let x = m.unmap(y);
        assert_eq!(contents[x as usize], (x % 251) as u8, "view offset {y}");
    }
    println!("\nverified: every view byte reached its file position.");
}
